//! The event-driven full-system simulation.
//!
//! Units are busy until a completion event; all scheduling decisions
//! (read refills, buffer switches, allocation rounds, FIFO dispatch) are
//! re-evaluated at every event boundary, which is exactly when unit status
//! bits change — so the cycle-level scheduling semantics of the paper are
//! preserved without stepping empty cycles.
//!
//! Statistics flow through `nvwa-telemetry`: counters and histograms live
//! in a [`MetricsRegistry`], per-pool busy/idle-by-cause integrals in two
//! [`StallTracker`]s (synchronized once per event, which is the only time
//! unit status can change), and — when requested — every SU read, EU hit,
//! SU suspension and allocation round becomes a span in a
//! [`TraceRecorder`] for Chrome/Perfetto inspection. [`SimReport`] is a
//! view over the registry.

use std::collections::VecDeque;

use nvwa_sim::event::EventQueue;
use nvwa_sim::hbm::Hbm;
use nvwa_sim::Cycle;
use nvwa_telemetry::{
    CounterId, HistogramId, MetricsRegistry, PoolState, StallCause, StallTracker, TraceRecorder,
    PID_ACCELERATOR,
};

use crate::config::{EuClass, NvwaConfig};
use crate::coordinator::allocator::{AllocPolicy, AllocateJudger, HitsAllocator, IdleEu};
use crate::coordinator::hits_buffer::HitsBuffer;
use crate::extension::trigger::AllocateTrigger;
use crate::interface::Hit;
use crate::seeding::batch::BatchScheduler;
use crate::seeding::ocra::OneCycleReadAllocator;
use crate::seeding::read_spm::ReadSpm;
use crate::units::eu::EuModel;
use crate::units::su::SuModel;
use crate::units::workload::ReadWork;

use super::report::SimReport;

/// The four hit intervals used for assignment-correctness accounting
/// (Fig. 12e/f), independent of the instantiated EU classes.
const HIT_INTERVALS: [usize; 4] = [16, 32, 64, 128];

/// Instrumentation switches for [`simulate_instrumented`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SimOptions {
    /// Record a Chrome trace (one track per SU/EU plus the Coordinator).
    /// Costs one span per read/hit, so off by default.
    pub trace: bool,
}

/// A simulation run with its full telemetry.
#[derive(Debug, Clone)]
pub struct SimRun {
    /// The aggregate report (a view over [`SimRun::metrics`]).
    pub report: SimReport,
    /// All counters, gauges, histograms and stall series of the run.
    pub metrics: MetricsRegistry,
    /// The span trace, when [`SimOptions::trace`] was set.
    pub trace: Option<TraceRecorder>,
}

#[derive(Debug, Clone, Copy)]
#[allow(clippy::enum_variant_names)] // the *Done suffix is the semantics
enum Event {
    SuDone { su: usize },
    EuDone { eu: usize },
    AllocDone,
}

#[derive(Debug, Clone, Copy)]
struct EuState {
    pes: u32,
    class_idx: usize,
    busy: bool,
}

enum HitPath {
    /// The Coordinator path: double buffer + greedy allocator.
    Coordinator {
        buffer: HitsBuffer<Hit>,
        allocator: HitsAllocator,
        judger: AllocateJudger,
        trigger: AllocateTrigger,
        /// Set after a zero-progress round; cleared when EU/buffer state
        /// changes, preventing same-cycle re-trigger livelock.
        blocked: bool,
    },
    /// The baseline path: a bounded FIFO dispatched head-first.
    Fifo {
        queue: VecDeque<Hit>,
        capacity: usize,
        /// With hybrid units but no Hits Allocator, the minimal hardware
        /// matches the head hit strictly to its own class (and blocks on
        /// it — the paper's "basic method (1)"); with uniform units the
        /// head takes the first idle unit.
        strict_class: bool,
    },
}

/// Handles into the run's [`MetricsRegistry`], resolved once at startup so
/// the event loop never does a name lookup.
#[derive(Debug, Clone, Copy)]
struct MetricIds {
    reads_issued: CounterId,
    hits_dispatched: CounterId,
    alloc_rounds: CounterId,
    fragmented: CounterId,
    stall_events: CounterId,
    switches: CounterId,
    read_cycles: HistogramId,
    hit_cycles: HistogramId,
    round_allocated: HistogramId,
}

impl MetricIds {
    fn register(metrics: &mut MetricsRegistry) -> MetricIds {
        MetricIds {
            reads_issued: metrics.counter("sim.reads_issued"),
            hits_dispatched: metrics.counter("coordinator.hits_dispatched"),
            alloc_rounds: metrics.counter("coordinator.alloc_rounds"),
            fragmented: metrics.counter("coordinator.fragmented_hits"),
            stall_events: metrics.counter("su.stall_events"),
            switches: metrics.counter("coordinator.buffer_switches"),
            read_cycles: metrics.histogram("su.read_cycles"),
            hit_cycles: metrics.histogram("eu.hit_cycles"),
            round_allocated: metrics.histogram("coordinator.round_allocated"),
        }
    }
}

struct SimState<'w> {
    config: NvwaConfig,
    works: &'w [ReadWork],
    now: Cycle,
    events: EventQueue<Event>,
    // Seeding side.
    su_busy: Vec<bool>,
    su_read: Vec<Option<usize>>,
    su_stalled: Vec<Option<Vec<Hit>>>,
    next_read: u64,
    ocra: OneCycleReadAllocator,
    batch: BatchScheduler,
    su_model: SuModel,
    read_spm: ReadSpm,
    hbm: Hbm,
    // Extension side.
    eus: Vec<EuState>,
    traceback: Cycle,
    path: HitPath,
    // Telemetry.
    metrics: MetricsRegistry,
    ids: MetricIds,
    su_stall: StallTracker,
    eu_stall: StallTracker,
    trace: Option<TraceRecorder>,
    su_issued_at: Vec<Cycle>,
    su_stall_since: Vec<Option<Cycle>>,
    eu_issued: Vec<Option<(Cycle, u32)>>,
    matrix: Vec<Vec<u64>>,
}

/// Runs the full-system simulation of `works` under `config`.
///
/// Deterministic: identical inputs give identical reports. Equivalent to
/// [`simulate_instrumented`] with default options, keeping only the report.
///
/// # Panics
///
/// Panics if `config` is invalid (see [`NvwaConfig::validate`]) or `works`
/// is empty.
pub fn simulate(config: &NvwaConfig, works: &[ReadWork]) -> SimReport {
    simulate_instrumented(config, works, &SimOptions::default()).report
}

/// Runs the full-system simulation, returning the report together with the
/// metrics registry (and, optionally, a Chrome trace).
///
/// # Panics
///
/// Panics if `config` is invalid (see [`NvwaConfig::validate`]) or `works`
/// is empty.
pub fn simulate_instrumented(config: &NvwaConfig, works: &[ReadWork], opts: &SimOptions) -> SimRun {
    config.validate();
    assert!(!works.is_empty(), "workload must be non-empty");

    let eu_classes = config.effective_eu_classes();
    let mut eus = Vec::new();
    for (class_idx, c) in eu_classes.iter().enumerate() {
        for _ in 0..c.count {
            eus.push(EuState {
                pes: c.pes,
                class_idx,
                busy: false,
            });
        }
    }
    let path = if config.scheduling.hits_allocator {
        HitPath::Coordinator {
            buffer: HitsBuffer::new(config.hits_buffer_depth, config.store_switch_threshold),
            allocator: HitsAllocator::new(&eu_classes, AllocPolicy::GroupedGreedy),
            judger: AllocateJudger::new(),
            trigger: AllocateTrigger::new(config.idle_eu_threshold),
            blocked: false,
        }
    } else {
        HitPath::Fifo {
            queue: VecDeque::new(),
            capacity: config.baseline_fifo_capacity,
            strict_class: config.scheduling.hybrid_units,
        }
    };

    let total_eus = eus.len() as u32;
    let mut metrics = MetricsRegistry::new();
    let ids = MetricIds::register(&mut metrics);
    let trace = opts.trace.then(|| {
        let mut rec = TraceRecorder::new();
        rec.name_process(PID_ACCELERATOR, "NvWa accelerator");
        for su in 0..config.su_count {
            rec.name_thread(PID_ACCELERATOR, su, &format!("SU{su}"));
        }
        for eu in 0..total_eus {
            rec.name_thread(PID_ACCELERATOR, config.su_count + eu, &format!("EU{eu}"));
        }
        rec.name_thread(PID_ACCELERATOR, config.su_count + total_eus, "Coordinator");
        rec
    });
    let mut state = SimState {
        works,
        now: 0,
        events: EventQueue::new(),
        su_busy: vec![false; config.su_count as usize],
        su_read: vec![None; config.su_count as usize],
        su_stalled: vec![None; config.su_count as usize],
        next_read: 0,
        ocra: OneCycleReadAllocator::new(config.su_count as usize),
        batch: BatchScheduler::new(config.su_count as usize),
        su_model: SuModel::new(config.su_cache_blocks, config.su_cache_latency),
        read_spm: ReadSpm::for_su_pool(config.su_count),
        hbm: Hbm::new(config.hbm),
        eus,
        traceback: config.traceback_cycles,
        path,
        metrics,
        ids,
        su_stall: StallTracker::new(config.su_count, config.stats_bucket),
        eu_stall: StallTracker::new(total_eus, config.stats_bucket),
        trace,
        su_issued_at: vec![0; config.su_count as usize],
        su_stall_since: vec![None; config.su_count as usize],
        eu_issued: vec![None; total_eus as usize],
        matrix: vec![vec![0; eu_classes.len()]; HIT_INTERVALS.len()],
        config: config.clone(),
    };

    state.schedule_reads();
    state.sync_stats();
    // Advance to the next populated cycle with pop(), then drain that
    // cycle's bucket with pop_while() — O(1) amortized per same-cycle
    // event instead of a heap sift each. Events scheduled *at* the
    // current cycle during handling join the back of the bucket, which is
    // exactly the insertion-order tie-break the heap gave them.
    while let Some((t, first)) = state.events.pop() {
        debug_assert!(t >= state.now, "time must advance");
        state.now = t;
        let mut next = Some(first);
        while let Some(ev) = next {
            match ev {
                Event::SuDone { su } => state.on_su_done(su),
                Event::EuDone { eu } => state.on_eu_done(eu),
                Event::AllocDone => state.on_alloc_done(),
            }
            state.maintenance();
            state.sync_stats();
            next = state.events.pop_while(t);
        }
    }
    state.into_run(&eu_classes)
}

impl SimState<'_> {
    /// SUs actively seeding (busy and not suspended on a full buffer).
    fn running_su_count(&self) -> u32 {
        self.su_busy
            .iter()
            .zip(&self.su_stalled)
            .filter(|(&b, s)| b && s.is_none())
            .count() as u32
    }

    fn seeding_finished(&self) -> bool {
        self.next_read as usize >= self.works.len()
            && self.su_busy.iter().all(|&b| !b)
            && self.su_stalled.iter().all(|s| s.is_none())
    }

    /// Why every currently idle EU is idle: hits waiting but undispatched
    /// means Coordinator scheduling latency or fragmentation (head-of-line
    /// blocking on the FIFO path); an empty buffer is either the producers
    /// lagging or — once seeding is over and nothing is in flight — the
    /// tail drain.
    fn eu_idle_cause(&self) -> StallCause {
        match &self.path {
            HitPath::Coordinator { buffer, .. } => {
                if buffer.processing_remaining() > 0 {
                    StallCause::AllocFragmentation
                } else if self.seeding_finished() && buffer.store_len() == 0 {
                    StallCause::Drain
                } else {
                    StallCause::EmptyHitsBuffer
                }
            }
            HitPath::Fifo { queue, .. } => {
                if !queue.is_empty() {
                    StallCause::AllocFragmentation
                } else if self.seeding_finished() {
                    StallCause::Drain
                } else {
                    StallCause::EmptyHitsBuffer
                }
            }
        }
    }

    /// Pushes the current busy/idle-by-cause distribution of both pools
    /// into the stall trackers. Called once per handled event — unit
    /// status only changes at event boundaries, so intra-event states are
    /// zero-length and integrating the post-event state is exact.
    fn sync_stats(&mut self) {
        let running = self.running_su_count();
        let suspended = self.su_stalled.iter().filter(|s| s.is_some()).count() as u32;
        let idle = self.config.su_count - running - suspended;
        let idle_cause = if (self.next_read as usize) < self.works.len() {
            // Reads remain but the scheduler has not issued one: the
            // Read-in-Batch barrier (OCRA refills every idle SU, so this
            // stays zero under OCRA).
            StallCause::BatchBarrier
        } else {
            StallCause::Drain
        };
        self.su_stall.set_state(
            self.now,
            PoolState::all_busy(running)
                .with_idle(StallCause::StoreBufferFull, suspended)
                .with_idle(idle_cause, idle),
        );

        let eu_busy = self.eus.iter().filter(|e| e.busy).count() as u32;
        let eu_idle = self.eus.len() as u32 - eu_busy;
        let eu_cause = self.eu_idle_cause();
        self.eu_stall.set_state(
            self.now,
            PoolState::all_busy(eu_busy).with_idle(eu_cause, eu_idle),
        );
    }

    fn coordinator_tid(&self) -> u32 {
        self.config.su_count + self.eus.len() as u32
    }

    /// Refills idle SUs with new reads via the active read scheduler.
    fn schedule_reads(&mut self) {
        let remaining = self.works.len() as u64 - self.next_read;
        if remaining == 0 {
            return;
        }
        // A stalled SU is not schedulable: report it busy.
        let busy: Vec<bool> = self
            .su_busy
            .iter()
            .zip(&self.su_stalled)
            .map(|(&b, s)| b || s.is_some())
            .collect();
        let (assigned, new_next) = if self.config.scheduling.ocra {
            self.ocra.allocate(&busy, self.next_read, remaining)
        } else {
            self.batch.allocate(&busy, self.next_read, remaining)
        };
        let offset_before = self.next_read;
        self.next_read = new_next;
        for (su, read) in assigned.into_iter().enumerate() {
            let Some(read_idx) = read else { continue };
            let work = &self.works[read_idx as usize];
            // One cycle for the allocator itself, then the read load.
            let load = self.read_spm.load_latency(read_idx, offset_before);
            let start = self.now + 1 + load;
            let done = self
                .su_model
                .seeding_latency(start, work, &mut self.hbm)
                .max(self.now + 1);
            self.su_busy[su] = true;
            self.su_read[su] = Some(read_idx as usize);
            self.su_issued_at[su] = self.now;
            self.metrics.inc(self.ids.reads_issued, 1);
            if std::env::var("NVWA_DEBUG").is_ok() {
                eprintln!(
                    "su={su} read={read_idx} now={} start={start} done={done} lat={}",
                    self.now,
                    done - self.now
                );
            }
            self.events.push(done, Event::SuDone { su });
        }
    }

    fn on_su_done(&mut self, su: usize) {
        let read_idx = self.su_read[su].expect("SU completion without a read");
        self.metrics
            .observe(self.ids.read_cycles, self.now - self.su_issued_at[su]);
        if let Some(rec) = &mut self.trace {
            rec.complete_with_args(
                PID_ACCELERATOR,
                su as u32,
                &format!("read {read_idx}"),
                nvwa_telemetry::cycles_to_us(self.su_issued_at[su]),
                nvwa_telemetry::cycles_to_us(self.now - self.su_issued_at[su]),
                &[("read", read_idx as f64)],
            );
        }
        let hits: Vec<Hit> = self.works[read_idx].hits.clone();
        self.finish_or_stall(su, hits);
    }

    /// Pushes a SU's hits toward the extension side; suspends the SU when
    /// the buffer is full (the blocking state of Fig. 13a).
    fn finish_or_stall(&mut self, su: usize, hits: Vec<Hit>) {
        let mut pending = hits;
        while let Some(hit) = pending.first().copied() {
            let accepted = match &mut self.path {
                HitPath::Coordinator { buffer, .. } => buffer.push(hit).is_ok(),
                HitPath::Fifo {
                    queue, capacity, ..
                } => {
                    if queue.len() < *capacity {
                        queue.push_back(hit);
                        true
                    } else {
                        false
                    }
                }
            };
            if accepted {
                pending.remove(0);
            } else {
                break;
            }
        }
        if pending.is_empty() {
            if let Some(since) = self.su_stall_since[su].take() {
                if let Some(rec) = &mut self.trace {
                    rec.complete(
                        PID_ACCELERATOR,
                        su as u32,
                        StallCause::StoreBufferFull.span_name(),
                        nvwa_telemetry::cycles_to_us(since),
                        nvwa_telemetry::cycles_to_us(self.now - since),
                    );
                }
            }
            self.su_stalled[su] = None;
            self.su_busy[su] = false;
            self.su_read[su] = None;
            self.schedule_reads();
        } else {
            if self.su_stalled[su].is_none() {
                self.metrics.inc(self.ids.stall_events, 1);
                self.su_stall_since[su] = Some(self.now);
            }
            // A suspended SU holds its read but is not doing useful work:
            // it counts as unutilized (the paper's Fig. 13a "suspending
            // state").
            self.su_stalled[su] = Some(pending);
        }
    }

    fn on_eu_done(&mut self, eu: usize) {
        self.eus[eu].busy = false;
        if let Some((issued, hit_len)) = self.eu_issued[eu].take() {
            self.metrics.observe(self.ids.hit_cycles, self.now - issued);
            if let Some(rec) = &mut self.trace {
                rec.complete_with_args(
                    PID_ACCELERATOR,
                    self.config.su_count + eu as u32,
                    "hit",
                    nvwa_telemetry::cycles_to_us(issued),
                    nvwa_telemetry::cycles_to_us(self.now - issued),
                    &[("hit_len", hit_len as f64)],
                );
            }
        }
        if let HitPath::Coordinator { blocked, .. } = &mut self.path {
            *blocked = false;
        }
    }

    fn on_alloc_done(&mut self) {
        let HitPath::Coordinator {
            buffer,
            allocator,
            judger,
            blocked,
            ..
        } = &mut self.path
        else {
            unreachable!("AllocDone only fires on the Coordinator path");
        };
        let batch = buffer.peek_batch(self.config.alloc_batch_size).to_vec();
        let mut idle: Vec<IdleEu> = self
            .eus
            .iter()
            .enumerate()
            .filter(|(_, e)| !e.busy)
            .map(|(unit_idx, e)| IdleEu {
                unit_idx,
                pes: e.pes,
            })
            .collect();
        let (flags, assignments) = allocator.allocate(&batch, &mut idle);
        let stats = buffer.complete_round(&flags);
        judger.complete();
        self.metrics.inc(self.ids.alloc_rounds, 1);
        self.metrics
            .inc(self.ids.fragmented, stats.unallocated as u64);
        self.metrics
            .observe(self.ids.round_allocated, stats.allocated as u64);
        if stats.allocated == 0 {
            *blocked = true;
        }
        let coordinator_tid = self.coordinator_tid();
        if let Some(rec) = &mut self.trace {
            let started = self.now - self.config.alloc_latency;
            rec.complete_with_args(
                PID_ACCELERATOR,
                coordinator_tid,
                "alloc round",
                nvwa_telemetry::cycles_to_us(started),
                nvwa_telemetry::cycles_to_us(self.config.alloc_latency),
                &[
                    ("allocated", stats.allocated as f64),
                    ("unallocated", stats.unallocated as f64),
                ],
            );
        }
        let dispatches: Vec<(usize, Hit)> = assignments
            .iter()
            .map(|a| (a.unit.unit_idx, batch[a.batch_slot]))
            .collect();
        for (unit_idx, hit) in dispatches {
            self.dispatch(unit_idx, &hit);
        }
    }

    /// Occupies EU `unit_idx` with `hit` and records the assignment.
    fn dispatch(&mut self, unit_idx: usize, hit: &Hit) {
        let eu = &mut self.eus[unit_idx];
        debug_assert!(!eu.busy, "dispatch to a busy EU");
        eu.busy = true;
        let model = EuModel::with_algorithm(eu.pes, self.traceback, self.config.eu_algorithm);
        let done = self.now + model.task_latency(hit);
        let class_idx = eu.class_idx;
        self.events.push(done, Event::EuDone { eu: unit_idx });
        self.eu_issued[unit_idx] = Some((self.now, hit.hit_len()));
        let interval = HIT_INTERVALS
            .iter()
            .position(|&b| hit.hit_len() as usize <= b)
            .unwrap_or(HIT_INTERVALS.len() - 1);
        self.matrix[interval][class_idx] += 1;
        self.metrics.inc(self.ids.hits_dispatched, 1);
    }

    /// Re-evaluates buffer switches, stall resolution, allocation triggers
    /// and FIFO dispatch until nothing changes at the current cycle.
    fn maintenance(&mut self) {
        loop {
            let draining = self.seeding_finished();
            let mut progressed = self.try_switch(draining);
            progressed |= self.try_trigger(draining);
            progressed |= self.try_fifo_dispatch();
            progressed |= self.resume_stalled();
            if !progressed {
                break;
            }
        }
    }

    /// Buffer switch: threshold reached, or forced when the producers are
    /// done (or every active SU is suspended on a full Store Buffer).
    fn try_switch(&mut self, draining: bool) -> bool {
        let all_stalled = self.su_stalled.iter().any(|s| s.is_some())
            && self
                .su_stalled
                .iter()
                .zip(&self.su_busy)
                .all(|(s, &b)| s.is_some() || !b);
        let coordinator_tid = self.config.su_count + self.eus.len() as u32;
        let HitPath::Coordinator {
            buffer, blocked, ..
        } = &mut self.path
        else {
            return false;
        };
        if buffer.should_switch(draining || all_stalled) && buffer.switch() {
            self.metrics.inc(self.ids.switches, 1);
            if let Some(rec) = &mut self.trace {
                rec.instant(
                    PID_ACCELERATOR,
                    coordinator_tid,
                    "buffer switch",
                    nvwa_telemetry::cycles_to_us(self.now),
                );
            }
            *blocked = false;
            true
        } else {
            false
        }
    }

    /// Allocate Trigger → Judger → scheduled round.
    fn try_trigger(&mut self, draining: bool) -> bool {
        let idle = self.eus.iter().filter(|e| !e.busy).count();
        let total = self.eus.len();
        let HitPath::Coordinator {
            buffer,
            judger,
            trigger,
            blocked,
            ..
        } = &mut self.path
        else {
            return false;
        };
        let want = buffer.processing_remaining() > 0
            && idle > 0
            && !*blocked
            && (draining || trigger.should_request(idle, total));
        if want && judger.request() {
            self.events
                .push(self.now + self.config.alloc_latency, Event::AllocDone);
            true
        } else {
            false
        }
    }

    /// Baseline path: head-of-line dispatch to an idle EU.
    fn try_fifo_dispatch(&mut self) -> bool {
        let (hit, unit_idx) = {
            let HitPath::Fifo {
                queue,
                strict_class,
                ..
            } = &self.path
            else {
                return false;
            };
            let Some(hit) = queue.front().copied() else {
                return false;
            };
            let choice = if *strict_class {
                // Head-of-line blocking on the hit's own class: the
                // smallest class whose PE count covers the hit length.
                let wanted = self
                    .eus
                    .iter()
                    .map(|e| e.pes)
                    .filter(|&p| hit.hit_len() <= p)
                    .min()
                    .unwrap_or_else(|| self.eus.iter().map(|e| e.pes).max().expect("EUs exist"));
                self.eus.iter().position(|e| !e.busy && e.pes == wanted)
            } else {
                self.eus.iter().position(|e| !e.busy)
            };
            match choice {
                Some(u) => (hit, u),
                None => return false,
            }
        };
        if let HitPath::Fifo { queue, .. } = &mut self.path {
            queue.pop_front();
        }
        self.dispatch(unit_idx, &hit);
        true
    }

    /// Resumes suspended SUs whose buffer space opened up.
    fn resume_stalled(&mut self) -> bool {
        let mut progressed = false;
        for su in 0..self.su_stalled.len() {
            if let Some(pending) = self.su_stalled[su].take() {
                // Re-install before retrying so finish_or_stall does not
                // count a fresh stall event.
                self.su_stalled[su] = Some(pending.clone());
                self.finish_or_stall(su, pending);
                if self.su_stalled[su].is_none() {
                    progressed = true;
                }
            }
        }
        progressed
    }

    fn into_run(mut self, eu_classes: &[EuClass]) -> SimRun {
        let end = self.now.max(1);
        let su_utilization = self.su_stall.utilization(end);
        let eu_utilization = self.eu_stall.utilization(end);
        let su_series = self.su_stall.busy_series(end);
        let eu_series = self.eu_stall.busy_series(end);
        self.su_stall.export_into(&mut self.metrics, "su", end);
        self.eu_stall.export_into(&mut self.metrics, "eu", end);

        let m = &mut self.metrics;
        let g = |m: &mut MetricsRegistry, name: &str, v: f64| {
            let id = m.gauge(name);
            m.set_gauge(id, v);
        };
        g(m, "sim.total_cycles", end as f64);
        g(m, "su.utilization", su_utilization);
        g(m, "eu.utilization", eu_utilization);
        g(m, "su.cache_hit_rate", self.su_model.cache_hit_rate());
        g(m, "hbm.energy_j", self.hbm.energy_joules());
        g(m, "hbm.mean_queue_delay", self.hbm.mean_queue_delay());
        let c = |m: &mut MetricsRegistry, name: &str, v: u64| {
            let id = m.counter(name);
            m.inc(id, v);
        };
        c(m, "hbm.requests", self.hbm.requests());
        c(m, "hbm.bytes", self.hbm.bytes_transferred());
        // SUs blocked on an HBM round trip are *busy* in this model (the
        // seeding chain owns the unit), so the wait is a blocked-cycles
        // counter, not an idle cause — see the StallCause taxonomy.
        c(
            m,
            &format!("su.stall.{}.cycles", StallCause::HbmWait.label()),
            self.hbm.total_queue_delay(),
        );

        let report = SimReport {
            total_cycles: end,
            reads: self.works.len() as u64,
            hits_dispatched: self.metrics.counter_get(self.ids.hits_dispatched),
            su_utilization,
            eu_utilization,
            su_series,
            eu_series,
            stats_bucket: self.config.stats_bucket,
            assignment_matrix: self.matrix,
            hit_class_bounds: HIT_INTERVALS.to_vec(),
            eu_class_pes: eu_classes.iter().map(|c| c.pes).collect(),
            buffer_switches: self.metrics.counter_get(self.ids.switches),
            alloc_rounds: self.metrics.counter_get(self.ids.alloc_rounds),
            fragmented_hits: self.metrics.counter_get(self.ids.fragmented),
            su_stall_events: self.metrics.counter_get(self.ids.stall_events),
            hbm_requests: self.hbm.requests(),
            hbm_energy_j: self.hbm.energy_joules(),
            su_cache_hit_rate: self.su_model.cache_hit_rate(),
        };
        SimRun {
            report,
            metrics: self.metrics,
            trace: self.trace,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SchedulingConfig;
    use crate::units::workload::SyntheticWorkloadParams;

    fn small_workload(reads: usize) -> Vec<ReadWork> {
        SyntheticWorkloadParams {
            reads,
            mean_accesses: 60.0,
            ..SyntheticWorkloadParams::default()
        }
        .generate(42)
    }

    fn config() -> NvwaConfig {
        NvwaConfig::small_test()
    }

    #[test]
    fn simulation_terminates_and_processes_all_hits() {
        let works = small_workload(200);
        let total_hits: u64 = works.iter().map(|w| w.hits.len() as u64).sum();
        let report = simulate(&config(), &works);
        assert_eq!(report.reads, 200);
        assert_eq!(report.hits_dispatched, total_hits);
        assert!(report.total_cycles > 0);
    }

    #[test]
    fn deterministic() {
        let works = small_workload(100);
        let a = simulate(&config(), &works);
        let b = simulate(&config(), &works);
        assert_eq!(a, b);
    }

    #[test]
    fn instrumented_metrics_match_the_report() {
        let works = small_workload(150);
        let run = simulate_instrumented(&config(), &works, &SimOptions::default());
        let m = &run.metrics;
        let r = &run.report;
        assert_eq!(
            m.counter_value("coordinator.hits_dispatched"),
            Some(r.hits_dispatched)
        );
        assert_eq!(
            m.counter_value("coordinator.alloc_rounds"),
            Some(r.alloc_rounds)
        );
        assert_eq!(
            m.counter_value("coordinator.buffer_switches"),
            Some(r.buffer_switches)
        );
        assert_eq!(m.counter_value("sim.reads_issued"), Some(r.reads));
        assert_eq!(
            m.gauge_value("sim.total_cycles"),
            Some(r.total_cycles as f64)
        );
        assert_eq!(m.gauge_value("su.utilization"), Some(r.su_utilization));
        assert_eq!(m.gauge_value("eu.utilization"), Some(r.eu_utilization));
        // Latency histograms saw every read and every hit.
        let reads_h = m.histogram_value("su.read_cycles").unwrap();
        assert_eq!(reads_h.count(), r.reads);
        assert!(reads_h.p99() >= reads_h.p50());
        assert_eq!(
            m.histogram_value("eu.hit_cycles").unwrap().count(),
            r.hits_dispatched
        );
    }

    #[test]
    fn stall_cycles_sum_to_idle_cycles_per_pool() {
        let works = small_workload(200);
        // A tiny buffer forces Store-Buffer stalls so several causes are
        // non-zero at once.
        let cfg = NvwaConfig {
            hits_buffer_depth: 8,
            alloc_batch_size: 4,
            ..config()
        };
        let run = simulate_instrumented(&cfg, &works, &SimOptions::default());
        let m = &run.metrics;
        let total = run.report.total_cycles as f64;
        for (prefix, units) in [("su", cfg.su_count), ("eu", 7)] {
            let busy = m.gauge_value(&format!("{prefix}.busy_cycles")).unwrap();
            let idle = m.gauge_value(&format!("{prefix}.idle_cycles")).unwrap();
            let by_cause: f64 = StallCause::IDLE_CAUSES
                .iter()
                .map(|c| {
                    m.gauge_value(&format!("{prefix}.stall.{}.cycles", c.label()))
                        .unwrap()
                })
                .sum();
            assert_eq!(by_cause, idle, "{prefix}: causes must sum to idle");
            assert_eq!(
                busy + idle,
                units as f64 * total,
                "{prefix}: busy + idle must cover the pool-time rectangle"
            );
        }
        assert!(
            m.gauge_value("su.stall.store_buffer_full.cycles").unwrap() > 0.0,
            "tiny buffer must produce attributed Store-Buffer stalls"
        );
    }

    #[test]
    fn trace_spans_integrate_to_utilization() {
        let works = small_workload(150);
        let cfg = config();
        let run = simulate_instrumented(&cfg, &works, &SimOptions { trace: true });
        let trace = run.trace.expect("trace requested");
        let total_us = nvwa_telemetry::cycles_to_us(run.report.total_cycles);
        let su_busy_us: f64 = (0..cfg.su_count)
            .map(|su| trace.track_busy_us(PID_ACCELERATOR, su, "read"))
            .sum();
        let expected = run.report.su_utilization * cfg.su_count as f64 * total_us;
        assert!(
            (su_busy_us - expected).abs() <= expected * 0.01,
            "SU spans {su_busy_us} vs utilization integral {expected}"
        );
        let eu_busy_us: f64 = (0..7)
            .map(|eu| trace.track_busy_us(PID_ACCELERATOR, cfg.su_count + eu, "hit"))
            .sum();
        let expected = run.report.eu_utilization * 7.0 * total_us;
        assert!(
            (eu_busy_us - expected).abs() <= expected * 0.01,
            "EU spans {eu_busy_us} vs utilization integral {expected}"
        );
    }

    #[test]
    fn untraced_run_records_no_spans() {
        let works = small_workload(20);
        let run = simulate_instrumented(&config(), &works, &SimOptions::default());
        assert!(run.trace.is_none());
    }

    #[test]
    fn nvwa_beats_unscheduled_baseline() {
        let works = small_workload(400);
        let nvwa = simulate(&config(), &works);
        let baseline_cfg = NvwaConfig {
            scheduling: SchedulingConfig::baseline(),
            ..config()
        };
        let base = simulate(&baseline_cfg, &works);
        assert_eq!(base.hits_dispatched, nvwa.hits_dispatched);
        assert!(
            nvwa.total_cycles < base.total_cycles,
            "nvwa {} vs baseline {}",
            nvwa.total_cycles,
            base.total_cycles
        );
    }

    #[test]
    fn ocra_improves_su_utilization() {
        let works = small_workload(400);
        let with = simulate(&config(), &works);
        let without = simulate(
            &NvwaConfig {
                scheduling: SchedulingConfig {
                    ocra: false,
                    ..SchedulingConfig::nvwa()
                },
                ..config()
            },
            &works,
        );
        assert!(
            with.su_utilization > without.su_utilization,
            "with {} vs without {}",
            with.su_utilization,
            without.su_utilization
        );
    }

    #[test]
    fn batch_barrier_idle_is_attributed_under_read_in_batch() {
        // Without OCRA, SUs wait at the batch barrier while reads remain;
        // that idle time must land on the BatchBarrier cause. Under OCRA
        // it must be zero.
        let works = small_workload(300);
        let batch = simulate_instrumented(
            &NvwaConfig {
                scheduling: SchedulingConfig {
                    ocra: false,
                    ..SchedulingConfig::nvwa()
                },
                ..config()
            },
            &works,
            &SimOptions::default(),
        );
        let ocra = simulate_instrumented(&config(), &works, &SimOptions::default());
        let barrier = |run: &SimRun| {
            run.metrics
                .gauge_value("su.stall.batch_barrier.cycles")
                .unwrap()
        };
        assert!(
            barrier(&batch) > 0.0,
            "batch barrier idle must be attributed"
        );
        assert_eq!(barrier(&ocra), 0.0, "OCRA refills every idle SU");
    }

    #[test]
    fn allocator_beats_strict_blocking_fifo() {
        // With hybrid units, the Hits Allocator (buffered, sorted, grouped
        // with sub-optimal fallback) must outperform the minimal strict
        // class-matched blocking FIFO it replaces. Run at paper scale so
        // the EU pool has multiple units per class.
        let works = SyntheticWorkloadParams {
            reads: 800,
            ..SyntheticWorkloadParams::default()
        }
        .generate(42);
        let cfg = NvwaConfig {
            stats_bucket: 4096,
            ..NvwaConfig::paper()
        };
        let with = simulate(&cfg, &works);
        let without = simulate(
            &NvwaConfig {
                scheduling: SchedulingConfig {
                    hits_allocator: false,
                    hybrid_units: true,
                    ocra: true,
                },
                ..cfg
            },
            &works,
        );
        assert!(
            with.total_cycles < without.total_cycles,
            "with HA {} vs strict FIFO {}",
            with.total_cycles,
            without.total_cycles
        );
    }

    #[test]
    fn nvwa_allocation_correctness_beats_uniform_baseline() {
        // Fig. 12(e/f): NvWa places most hits on their optimal class; the
        // uniform SUs+EUs baseline cannot (it has only 64-PE units).
        let works = small_workload(400);
        let nvwa = simulate(&config(), &works);
        let base = simulate(
            &NvwaConfig {
                scheduling: SchedulingConfig::baseline(),
                ..config()
            },
            &works,
        );
        assert!(nvwa.overall_correct_allocation() > 0.5);
        assert!(nvwa.overall_correct_allocation() > base.overall_correct_allocation());
    }

    #[test]
    fn small_buffer_causes_stalls() {
        let works = small_workload(300);
        let tiny = simulate(
            &NvwaConfig {
                hits_buffer_depth: 8,
                alloc_batch_size: 4,
                ..config()
            },
            &works,
        );
        assert!(tiny.su_stall_events > 0);
        let big = simulate(
            &NvwaConfig {
                hits_buffer_depth: 4096,
                ..config()
            },
            &works,
        );
        assert_eq!(big.su_stall_events, 0);
    }

    #[test]
    fn utilization_is_bounded() {
        let works = small_workload(150);
        let r = simulate(&config(), &works);
        assert!(r.su_utilization > 0.0 && r.su_utilization <= 1.0);
        assert!(r.eu_utilization > 0.0 && r.eu_utilization <= 1.0);
    }

    #[test]
    fn scheduling_gains_hold_for_bit_parallel_units() {
        // The paper's orthogonality claim: the schedulers improve GenASM-
        // style units too, not just systolic arrays.
        use crate::config::EuAlgorithm;
        let works = SyntheticWorkloadParams {
            reads: 600,
            ..SyntheticWorkloadParams::default()
        }
        .generate(0x0b17);
        let run = |sched: SchedulingConfig| {
            simulate(
                &NvwaConfig {
                    eu_algorithm: EuAlgorithm::BitParallel,
                    scheduling: sched,
                    ..NvwaConfig::paper()
                },
                &works,
            )
            .total_cycles
        };
        let base = run(SchedulingConfig::baseline());
        let nvwa = run(SchedulingConfig::nvwa());
        assert!(nvwa < base, "bit-parallel: nvwa {nvwa} vs baseline {base}");
    }

    #[test]
    fn single_read_workload_works() {
        let works = small_workload(1);
        let r = simulate(&config(), &works);
        assert_eq!(r.reads, 1);
        assert_eq!(r.buffer_switches, 1); // forced drain switch
    }
}
