//! Property-based tests pinning the seeding fast path to its oracles.
//!
//! Two families:
//!
//! * **occ substrate** — the single-pass [`FmIndex::occ4`] and the cached
//!   [`FmIndex::occ4_cached`] must agree with four scalar
//!   [`FmIndex::occ`] scans at every rank, on every random text.
//! * **SMEM search** — the hot path ([`collect_smems`]) must be
//!   bit-identical to the frozen pre-optimization
//!   [`oracle::collect_smems`] in every configuration the pipeline uses:
//!   LUT on (no-trace sinks), LUT off (address-recording sinks), any LUT
//!   depth, scratch reused across queries or fresh.

use proptest::prelude::*;

use nvwa_index::fm_index::{FmIndex, OccCache};
use nvwa_index::fmd_index::FmdIndex;
use nvwa_index::smem::{collect_smems, collect_smems_into, oracle, SmemConfig, SmemScratch};
use nvwa_index::trace::{NullTrace, VecTrace};

fn codes(min_len: usize, max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..4, min_len..=max_len)
}

/// A config loose enough that tiny random texts still produce SMEMs.
fn loose_config() -> SmemConfig {
    SmemConfig {
        min_seed_len: 4,
        min_intv: 1,
        split_len: 8,
        split_width: 10,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `occ4` returns exactly what four scalar `occ` scans return, at
    /// every rank boundary of the text (including 0 and seq_len).
    #[test]
    fn occ4_matches_four_scalar_occ(text in codes(1, 300)) {
        let fm = FmIndex::from_text(&text);
        for i in 0..=fm.seq_len() {
            let quad = fm.occ4(i, &mut NullTrace);
            let scalar = [
                fm.occ(0, i, &mut NullTrace),
                fm.occ(1, i, &mut NullTrace),
                fm.occ(2, i, &mut NullTrace),
                fm.occ(3, i, &mut NullTrace),
            ];
            prop_assert_eq!(quad, scalar, "rank {}", i);
        }
    }

    /// `occ4_cached` agrees with `occ4` under an adversarial probe order
    /// (forward, backward, then pseudo-random), reusing one cache across
    /// all probes.
    #[test]
    fn occ4_cached_matches_occ4_any_probe_order(text in codes(1, 300), seed in 0u64..1024) {
        let fm = FmIndex::from_text(&text);
        let n = fm.seq_len();
        let mut cache = OccCache::new();
        let mut probes: Vec<u64> = (0..=n).collect();
        probes.extend((0..=n).rev());
        let mut state = seed.wrapping_mul(2) + 1;
        for _ in 0..=n {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            probes.push(state % (n + 1));
        }
        for &i in &probes {
            prop_assert_eq!(
                fm.occ4_cached(i, &mut cache, &mut NullTrace),
                fm.occ4(i, &mut NullTrace),
                "rank {}", i
            );
        }
        prop_assert_eq!(cache.lookups, probes.len() as u64);
    }

    /// The SMEM hot path with the LUT enabled (no-trace sink) is
    /// bit-identical to the frozen oracle, for every LUT depth.
    #[test]
    fn smems_with_lut_match_oracle(forward in codes(8, 200), query in codes(4, 64), k in 0usize..6) {
        let mut fmd = FmdIndex::from_forward(&forward);
        fmd.build_prefix_lut(k);
        let config = loose_config();
        let fast = collect_smems(&fmd, &query, &config, &mut NullTrace);
        prop_assert_eq!(fast, oracle::collect_smems(&fmd, &query, &config));
    }

    /// With an address-recording sink the LUT is bypassed (the trace must
    /// keep every extension step) but the occ-block cache stays engaged —
    /// the SMEMs are still bit-identical to the oracle.
    #[test]
    fn smems_with_trace_match_oracle(forward in codes(8, 200), query in codes(4, 64)) {
        let mut fmd = FmdIndex::from_forward(&forward);
        fmd.build_prefix_lut(4);
        let config = loose_config();
        let mut trace = VecTrace::default();
        let mut scratch = SmemScratch::new();
        let mut traced = Vec::new();
        collect_smems_into(&fmd, &query, &config, &mut scratch, &mut traced, &mut trace);
        prop_assert_eq!(&traced, &oracle::collect_smems(&fmd, &query, &config));
        // The trace-visible path must record addresses (unless the pivot
        // bases are absent from the reference entirely).
        if !traced.is_empty() {
            prop_assert!(!trace.0.is_empty());
        }
    }

    /// Scratch reuse across queries (the pipeline's steady state) never
    /// changes the result: cache state left by one query must not leak
    /// into the next.
    #[test]
    fn smems_with_reused_scratch_match_fresh(forward in codes(8, 200),
                                             queries in proptest::collection::vec(codes(4, 48), 1..4)) {
        let mut fmd = FmdIndex::from_forward(&forward);
        fmd.build_prefix_lut(3);
        let config = loose_config();
        let mut scratch = SmemScratch::new();
        let mut reused = Vec::new();
        for query in &queries {
            collect_smems_into(&fmd, query, &config, &mut scratch, &mut reused, &mut NullTrace);
            let fresh = collect_smems(&fmd, query, &config, &mut NullTrace);
            prop_assert_eq!(&reused, &fresh);
        }
    }
}
