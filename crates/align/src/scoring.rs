//! Scoring schemes.
//!
//! A typical scheme (Sec. II-B of the paper) has three parts: a substitution
//! matrix, an open-gap penalty and an extension-gap penalty. NvWa's EUs are
//! "faithful to de facto standard software BWA-MEM, e.g., the scoring
//! scheme, the affine gap penalty"; [`Scoring::bwa_mem`] is that default.

/// An affine-gap scoring scheme.
///
/// Penalties are stored as positive magnitudes; a gap of length `L` costs
/// `gap_open + L * gap_extend`.
///
/// # Examples
///
/// ```
/// use nvwa_align::Scoring;
/// let s = Scoring::bwa_mem();
/// assert_eq!(s.score(0, 0), 1);
/// assert_eq!(s.score(0, 3), -4);
/// assert_eq!(s.gap_cost(3), 9); // 6 + 3*1
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Scoring {
    /// Score for a base match (positive).
    pub match_score: i32,
    /// Penalty for a mismatch (positive magnitude).
    pub mismatch_penalty: i32,
    /// Penalty for opening a gap (positive magnitude).
    pub gap_open: i32,
    /// Penalty per gap base (positive magnitude).
    pub gap_extend: i32,
}

impl Scoring {
    /// BWA-MEM's default scheme: match 1, mismatch 4, gap open 6,
    /// gap extend 1.
    pub fn bwa_mem() -> Scoring {
        Scoring {
            match_score: 1,
            mismatch_penalty: 4,
            gap_open: 6,
            gap_extend: 1,
        }
    }

    /// Creates a scheme, validating signs.
    ///
    /// # Panics
    ///
    /// Panics if `match_score <= 0` or any penalty is negative.
    pub fn new(match_score: i32, mismatch_penalty: i32, gap_open: i32, gap_extend: i32) -> Scoring {
        assert!(match_score > 0, "match score must be positive");
        assert!(
            mismatch_penalty >= 0 && gap_open >= 0 && gap_extend >= 0,
            "penalties are positive magnitudes"
        );
        Scoring {
            match_score,
            mismatch_penalty,
            gap_open,
            gap_extend,
        }
    }

    /// Substitution score between two 2-bit codes.
    #[inline]
    pub fn score(&self, a: u8, b: u8) -> i32 {
        if a == b {
            self.match_score
        } else {
            -self.mismatch_penalty
        }
    }

    /// Total cost (positive) of a gap of `len` bases.
    #[inline]
    pub fn gap_cost(&self, len: u32) -> i32 {
        if len == 0 {
            0
        } else {
            self.gap_open + len as i32 * self.gap_extend
        }
    }
}

impl Default for Scoring {
    fn default() -> Scoring {
        Scoring::bwa_mem()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bwa_defaults() {
        let s = Scoring::bwa_mem();
        assert_eq!(
            (s.match_score, s.mismatch_penalty, s.gap_open, s.gap_extend),
            (1, 4, 6, 1)
        );
    }

    #[test]
    fn score_matrix() {
        let s = Scoring::bwa_mem();
        for a in 0..4u8 {
            for b in 0..4u8 {
                let v = s.score(a, b);
                assert_eq!(v, if a == b { 1 } else { -4 });
            }
        }
    }

    #[test]
    fn gap_costs() {
        let s = Scoring::bwa_mem();
        assert_eq!(s.gap_cost(0), 0);
        assert_eq!(s.gap_cost(1), 7);
        assert_eq!(s.gap_cost(10), 16);
    }

    #[test]
    #[should_panic(expected = "match score must be positive")]
    fn invalid_match_score_panics() {
        let _ = Scoring::new(0, 4, 6, 1);
    }
}
