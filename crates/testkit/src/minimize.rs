//! Input minimization for differential failures: first bisect the failing
//! *read set* to a locally minimal subset (delta debugging), then shrink
//! the surviving reads base by base.
//!
//! The predicate contract is "does this input set still fail?" — it must
//! be deterministic (same input, same answer), which every check in
//! [`crate::diff`] guarantees by construction (no wall-clock, no global
//! state). Minimization is greedy and bounded: each phase only ever keeps
//! a strictly smaller failing input, so it terminates in
//! `O(n log n)` predicate calls for the set phase and `O(len²)` worst
//! case (in practice `O(len log len)`) for the shrink phase.

/// Delta-debugging (ddmin) over an item set: returns a subset of `items`
/// that still satisfies `fails`, locally minimal under chunk removal.
///
/// Returns `items` unchanged if the full set does not fail (nothing to
/// minimize) — callers should only invoke this with a known-failing set.
pub fn minimize_set<T: Clone>(items: &[T], fails: &mut impl FnMut(&[T]) -> bool) -> Vec<T> {
    let mut current: Vec<T> = items.to_vec();
    if current.is_empty() || !fails(&current) {
        return current;
    }
    let mut granularity = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(granularity);
        let mut reduced = false;
        let mut start = 0;
        while start < current.len() && current.len() >= 2 {
            let end = (start + chunk).min(current.len());
            // Complement: everything except [start, end).
            let candidate: Vec<T> = current[..start]
                .iter()
                .chain(&current[end..])
                .cloned()
                .collect();
            if !candidate.is_empty() && fails(&candidate) {
                current = candidate;
                granularity = granularity.max(2).min(current.len().max(2));
                reduced = true;
                // Retry the same offset: a new chunk now occupies it.
            } else {
                start = end;
            }
        }
        if !reduced {
            if chunk <= 1 {
                break; // minimal under single-item removal
            }
            granularity = (granularity * 2).min(current.len());
        }
    }
    current
}

/// Shrinks one read while `fails` keeps holding: repeatedly removes
/// chunks (halving the chunk size down to one base) from every offset.
/// The result still fails and is locally minimal under chunk removal.
pub fn shrink_read(read: &[u8], fails: &mut impl FnMut(&[u8]) -> bool) -> Vec<u8> {
    let mut current = read.to_vec();
    if current.is_empty() || !fails(&current) {
        return current;
    }
    let mut chunk = (current.len() / 2).max(1);
    loop {
        let mut reduced = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let mut candidate = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            if !candidate.is_empty() && fails(&candidate) {
                current = candidate;
                reduced = true;
                // Same offset again: new bytes shifted into place.
            } else {
                start = end;
            }
        }
        if !reduced {
            if chunk == 1 {
                break;
            }
            chunk = (chunk / 2).max(1);
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_minimization_finds_the_single_culprit() {
        // Failure iff item 37 is present.
        let items: Vec<u32> = (0..100).collect();
        let mut calls = 0usize;
        let minimal = minimize_set(&items, &mut |s| {
            calls += 1;
            s.contains(&37)
        });
        assert_eq!(minimal, vec![37]);
        assert!(calls < 200, "ddmin used {calls} predicate calls");
    }

    #[test]
    fn set_minimization_handles_a_conjunction() {
        // Failure needs BOTH 3 and 60 present.
        let items: Vec<u32> = (0..80).collect();
        let minimal = minimize_set(&items, &mut |s| s.contains(&3) && s.contains(&60));
        assert_eq!(minimal, vec![3, 60]);
    }

    #[test]
    fn non_failing_set_is_returned_unchanged() {
        let items = vec![1, 2, 3];
        assert_eq!(minimize_set(&items, &mut |_| false), items);
    }

    #[test]
    fn read_shrinking_keeps_the_failing_motif() {
        // Failure iff the read contains the window [2, 2, 2, 2].
        let mut read = vec![0u8; 50];
        read.extend([2, 2, 2, 2]);
        read.extend(vec![1u8; 50]);
        let motif = |r: &[u8]| r.windows(4).any(|w| w == [2, 2, 2, 2]);
        let minimal = shrink_read(&read, &mut |r| motif(r));
        assert_eq!(minimal, vec![2, 2, 2, 2]);
    }

    #[test]
    fn shrinking_is_a_no_op_on_non_failing_input() {
        let read = vec![1, 2, 3];
        assert_eq!(shrink_read(&read, &mut |_| false), read);
    }
}
