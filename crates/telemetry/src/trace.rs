//! Chrome `trace_event` recorder.
//!
//! Spans are recorded as complete (`"ph":"X"`) events and serialized in
//! the [Trace Event Format] consumed by Perfetto and `chrome://tracing`.
//! Tracks are `(pid, tid)` pairs: the simulator uses one process for the
//! accelerator (one thread per SU/EU plus a Coordinator thread, timestamps
//! in cycles ÷ 1000 = µs at the paper's 1 GHz clock) and the binaries add
//! a host process whose phase spans carry wall-clock timestamps.
//!
//! Recording is append-only into a `Vec`; a disabled recorder is simply
//! absent (`Option<TraceRecorder>`), so the default path pays one branch.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::json::JsonValue;

/// The accelerator process id used by the simulator.
pub const PID_ACCELERATOR: u32 = 1;
/// The host process id used by the binaries for phase spans.
pub const PID_HOST: u32 = 0;

#[derive(Debug, Clone, PartialEq)]
enum Event {
    Complete {
        pid: u32,
        tid: u32,
        name: String,
        ts_us: f64,
        dur_us: f64,
        args: Vec<(String, f64)>,
    },
    Instant {
        pid: u32,
        tid: u32,
        name: String,
        ts_us: f64,
    },
    ThreadName {
        pid: u32,
        tid: u32,
        name: String,
    },
    ProcessName {
        pid: u32,
        name: String,
    },
}

/// Records spans and emits Chrome trace JSON.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceRecorder {
    events: Vec<Event>,
}

/// Converts accelerator cycles (1 GHz → 1 ns each) to trace microseconds.
pub fn cycles_to_us(cycles: u64) -> f64 {
    cycles as f64 / 1000.0
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> TraceRecorder {
        TraceRecorder::default()
    }

    /// Names a process (shown as the track group header).
    pub fn name_process(&mut self, pid: u32, name: &str) {
        self.events.push(Event::ProcessName {
            pid,
            name: name.to_string(),
        });
    }

    /// Names a thread (one track).
    pub fn name_thread(&mut self, pid: u32, tid: u32, name: &str) {
        self.events.push(Event::ThreadName {
            pid,
            tid,
            name: name.to_string(),
        });
    }

    /// Records a complete span.
    pub fn complete(&mut self, pid: u32, tid: u32, name: &str, ts_us: f64, dur_us: f64) {
        self.complete_with_args(pid, tid, name, ts_us, dur_us, &[]);
    }

    /// Records a complete span with numeric args.
    pub fn complete_with_args(
        &mut self,
        pid: u32,
        tid: u32,
        name: &str,
        ts_us: f64,
        dur_us: f64,
        args: &[(&str, f64)],
    ) {
        self.events.push(Event::Complete {
            pid,
            tid,
            name: name.to_string(),
            ts_us,
            dur_us,
            args: args.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
        });
    }

    /// Records an instant (zero-duration) event.
    pub fn instant(&mut self, pid: u32, tid: u32, name: &str, ts_us: f64) {
        self.events.push(Event::Instant {
            pid,
            tid,
            name: name.to_string(),
            ts_us,
        });
    }

    /// Number of recorded events (metadata included).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Sum of span durations (µs) for one `(pid, tid)` track, optionally
    /// filtered to spans whose name starts with `name_prefix`. Used to
    /// cross-check span integrals against utilization counters.
    pub fn track_busy_us(&self, pid: u32, tid: u32, name_prefix: &str) -> f64 {
        self.events
            .iter()
            .filter_map(|e| match e {
                Event::Complete {
                    pid: p,
                    tid: t,
                    name,
                    dur_us,
                    ..
                } if *p == pid && *t == tid && name.starts_with(name_prefix) => Some(*dur_us),
                _ => None,
            })
            .sum()
    }

    /// Builds the trace document.
    pub fn to_json_value(&self) -> JsonValue {
        let events = self
            .events
            .iter()
            .map(|e| match e {
                Event::Complete {
                    pid,
                    tid,
                    name,
                    ts_us,
                    dur_us,
                    args,
                } => {
                    let mut pairs = vec![
                        ("ph", JsonValue::Str("X".to_string())),
                        ("pid", JsonValue::Num(*pid as f64)),
                        ("tid", JsonValue::Num(*tid as f64)),
                        ("name", JsonValue::Str(name.clone())),
                        ("ts", JsonValue::Num(*ts_us)),
                        ("dur", JsonValue::Num(*dur_us)),
                    ];
                    if !args.is_empty() {
                        pairs.push((
                            "args",
                            JsonValue::Obj(
                                args.iter()
                                    .map(|(k, v)| (k.clone(), JsonValue::Num(*v)))
                                    .collect(),
                            ),
                        ));
                    }
                    JsonValue::obj(pairs)
                }
                Event::Instant {
                    pid,
                    tid,
                    name,
                    ts_us,
                } => JsonValue::obj(vec![
                    ("ph", JsonValue::Str("i".to_string())),
                    ("pid", JsonValue::Num(*pid as f64)),
                    ("tid", JsonValue::Num(*tid as f64)),
                    ("name", JsonValue::Str(name.clone())),
                    ("ts", JsonValue::Num(*ts_us)),
                    ("s", JsonValue::Str("t".to_string())),
                ]),
                Event::ThreadName { pid, tid, name } => JsonValue::obj(vec![
                    ("ph", JsonValue::Str("M".to_string())),
                    ("pid", JsonValue::Num(*pid as f64)),
                    ("tid", JsonValue::Num(*tid as f64)),
                    ("name", JsonValue::Str("thread_name".to_string())),
                    (
                        "args",
                        JsonValue::obj(vec![("name", JsonValue::Str(name.clone()))]),
                    ),
                ]),
                Event::ProcessName { pid, name } => JsonValue::obj(vec![
                    ("ph", JsonValue::Str("M".to_string())),
                    ("pid", JsonValue::Num(*pid as f64)),
                    ("tid", JsonValue::Num(0.0)),
                    ("name", JsonValue::Str("process_name".to_string())),
                    (
                        "args",
                        JsonValue::obj(vec![("name", JsonValue::Str(name.clone()))]),
                    ),
                ]),
            })
            .collect();
        JsonValue::obj(vec![
            ("traceEvents", JsonValue::Arr(events)),
            ("displayTimeUnit", JsonValue::Str("ms".to_string())),
        ])
    }

    /// Serializes the trace (pretty, one event per line block).
    pub fn to_json(&self) -> String {
        self.to_json_value().to_string_pretty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_valid_chrome_trace_json() {
        let mut rec = TraceRecorder::new();
        rec.name_process(PID_ACCELERATOR, "NvWa accelerator");
        rec.name_thread(PID_ACCELERATOR, 0, "SU0");
        rec.complete_with_args(
            PID_ACCELERATOR,
            0,
            "read 7",
            cycles_to_us(1000),
            cycles_to_us(500),
            &[("read", 7.0)],
        );
        rec.instant(PID_ACCELERATOR, 100, "buffer switch", cycles_to_us(1500));
        let doc = JsonValue::parse(&rec.to_json()).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 4);
        let span = &events[2];
        assert_eq!(span.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(span.get("ts").unwrap().as_num(), Some(1.0));
        assert_eq!(span.get("dur").unwrap().as_num(), Some(0.5));
        assert_eq!(
            span.get("args").unwrap().get("read").unwrap().as_num(),
            Some(7.0)
        );
    }

    #[test]
    fn track_busy_integrates_span_durations() {
        let mut rec = TraceRecorder::new();
        rec.complete(1, 3, "read 1", 0.0, 2.0);
        rec.complete(1, 3, "read 2", 5.0, 3.0);
        rec.complete(1, 3, "stall:store_buffer_full", 2.0, 1.0);
        rec.complete(1, 4, "read 9", 0.0, 100.0);
        assert_eq!(rec.track_busy_us(1, 3, "read"), 5.0);
        assert_eq!(rec.track_busy_us(1, 3, "stall:"), 1.0);
    }

    #[test]
    fn serialization_round_trips() {
        let mut rec = TraceRecorder::new();
        rec.name_thread(1, 0, "EU0");
        rec.complete(1, 0, "hit", 0.25, 1.75);
        let text = rec.to_json();
        let doc = JsonValue::parse(&text).unwrap();
        assert_eq!(doc.to_string_pretty(), text);
    }
}
