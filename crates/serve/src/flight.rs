//! The flight recorder: a fixed-capacity ring of recent serving events.
//!
//! When a worker panics or a shed storm hits, cumulative counters say
//! *that* something happened; the flight recorder says *what led up to
//! it* — the last `cap` admission/shed/batch/panic events, dumped to JSON
//! at the moment of the trigger. It is the post-incident half of the
//! observability plane (the `stats` endpoint is the live half).
//!
//! Recording is designed for the hot path: a slot is claimed with one
//! atomic `fetch_add` (lock-free, totally ordered sequence numbers) and
//! written under a *per-slot* mutex that only contends when the ring has
//! wrapped all the way around to a slot another thread is still writing —
//! with a ring of hundreds of slots and per-request events, effectively
//! never. A stale claim that loses the race to a wrapped newer one is
//! discarded by comparing sequence numbers, so the ring always converges
//! to the newest event per slot.
//!
//! Determinism boundary (see DESIGN.md §13): sequence numbers order
//! events by *claim time*, which under the wall clock depends on thread
//! interleaving. What IS invariant across worker counts is the event
//! *multiset* projected onto scheduling-independent facts — how many
//! admissions, which batch sequence numbers panicked, how many sheds.
//! [`FlightRecorder::dump_json`] therefore embeds a `digest` of exactly
//! those facts, and the testkit pins the digest (not the byte order) at
//! 1/2/8 workers; full-byte determinism is exercised in unit tests where
//! the caller controls the interleaving.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use nvwa_telemetry::snapshot::FLIGHT_EVENT_KINDS;
use nvwa_telemetry::JsonValue;

/// What happened (the wire names live in
/// [`nvwa_telemetry::snapshot::FLIGHT_EVENT_KINDS`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightEventKind {
    /// Request admitted: `a` = trace id, `b` = connection, `c` = queue
    /// depth after admission.
    Admit,
    /// Request shed: `a` = request id, `b` = connection, `c` = 0.
    Shed,
    /// Deadlines expired at batch formation: `a` = count, `b` = bin.
    Deadline,
    /// Batch execution started: `a` = batch seq, `b` = bin, `c` = size.
    BatchStart,
    /// Batch execution finished: `a` = batch seq, `b` = bin, `c` = size.
    BatchDone,
    /// Batch execution panicked: `a` = batch seq, `b` = worker.
    Panic,
    /// Request refused by a tenant's admission quota: `a` = request id,
    /// `b` = connection, `c` = the quota limit.
    Quota,
}

impl FlightEventKind {
    /// All kinds, index-aligned with [`FLIGHT_EVENT_KINDS`].
    pub const ALL: [FlightEventKind; 7] = [
        FlightEventKind::Admit,
        FlightEventKind::Shed,
        FlightEventKind::Deadline,
        FlightEventKind::BatchStart,
        FlightEventKind::BatchDone,
        FlightEventKind::Panic,
        FlightEventKind::Quota,
    ];

    /// Wire name.
    pub fn name(&self) -> &'static str {
        FLIGHT_EVENT_KINDS[*self as usize]
    }
}

/// One recorded event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlightEvent {
    /// Global claim order (unique, dense from 0).
    pub seq: u64,
    /// Microseconds since the metrics epoch.
    pub t_us: f64,
    /// What happened.
    pub kind: FlightEventKind,
    /// Kind-specific operand (see [`FlightEventKind`]).
    pub a: u64,
    /// Kind-specific operand.
    pub b: u64,
    /// Kind-specific operand.
    pub c: u64,
}

impl FlightEvent {
    fn to_json(self) -> JsonValue {
        JsonValue::obj(vec![
            ("seq", JsonValue::Num(self.seq as f64)),
            ("t_us", JsonValue::Num(self.t_us.max(0.0))),
            ("kind", JsonValue::Str(self.kind.name().to_string())),
            ("a", JsonValue::Num(self.a as f64)),
            ("b", JsonValue::Num(self.b as f64)),
            ("c", JsonValue::Num(self.c as f64)),
        ])
    }
}

/// The fixed-capacity event ring.
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<FlightEvent>>>,
    next_seq: AtomicU64,
    dumps: AtomicU64,
    last_dump_reason: Mutex<Option<String>>,
}

impl FlightRecorder {
    /// A recorder retaining the last `cap` events (`cap` is clamped to
    /// ≥ 1).
    pub fn new(cap: usize) -> FlightRecorder {
        FlightRecorder {
            slots: (0..cap.max(1)).map(|_| Mutex::new(None)).collect(),
            next_seq: AtomicU64::new(0),
            dumps: AtomicU64::new(0),
            last_dump_reason: Mutex::new(None),
        }
    }

    /// Ring capacity.
    pub fn cap(&self) -> usize {
        self.slots.len()
    }

    /// Events ever recorded (including ones the ring has since evicted).
    pub fn recorded(&self) -> u64 {
        self.next_seq.load(Ordering::Relaxed)
    }

    /// Records one event. Lock-free slot claim; the per-slot write only
    /// keeps the newest sequence number on a full wraparound race.
    pub fn record(&self, t_us: f64, kind: FlightEventKind, a: u64, b: u64, c: u64) {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        let mut guard = slot.lock().unwrap();
        if guard.is_none_or(|prev| prev.seq < seq) {
            *guard = Some(FlightEvent {
                seq,
                t_us,
                kind,
                a,
                b,
                c,
            });
        }
    }

    /// The retained events, oldest first (sorted by sequence number).
    pub fn events(&self) -> Vec<FlightEvent> {
        let mut events: Vec<FlightEvent> = self
            .slots
            .iter()
            .filter_map(|s| *s.lock().unwrap())
            .collect();
        events.sort_by_key(|e| e.seq);
        events
    }

    /// Per-kind counts over `events`, index-aligned with
    /// [`FLIGHT_EVENT_KINDS`].
    fn kind_counts(events: &[FlightEvent]) -> [u64; FlightEventKind::ALL.len()] {
        let mut counts = [0u64; FlightEventKind::ALL.len()];
        for e in events {
            counts[e.kind as usize] += 1;
        }
        counts
    }

    /// The summary section embedded in `stats` responses
    /// (`validate_flight_summary` checks it).
    pub fn summary_json(&self) -> JsonValue {
        let events = self.events();
        let counts = Self::kind_counts(&events);
        let by_kind = FLIGHT_EVENT_KINDS
            .iter()
            .zip(counts)
            .map(|(kind, n)| (*kind, JsonValue::Num(n as f64)))
            .collect();
        JsonValue::obj(vec![
            ("cap", JsonValue::Num(self.cap() as f64)),
            ("recorded", JsonValue::Num(self.recorded() as f64)),
            ("retained", JsonValue::Num(events.len() as f64)),
            (
                "dumps",
                JsonValue::Num(self.dumps.load(Ordering::Relaxed) as f64),
            ),
            (
                "last_dump_reason",
                match self.last_dump_reason.lock().unwrap().as_ref() {
                    Some(reason) => JsonValue::Str(reason.clone()),
                    None => JsonValue::Null,
                },
            ),
            ("by_kind", JsonValue::obj(by_kind)),
        ])
    }

    /// The full dump document (`"kind": "nvwa-flight"`), recording the
    /// trigger `reason`. The embedded `digest` carries the
    /// scheduling-invariant facts — per-kind counts plus the sorted batch
    /// sequence numbers that panicked — which the testkit pins across
    /// 1/2/8 workers.
    pub fn dump_json(&self, reason: &str) -> JsonValue {
        self.dumps.fetch_add(1, Ordering::Relaxed);
        *self.last_dump_reason.lock().unwrap() = Some(reason.to_string());
        let events = self.events();
        let counts = Self::kind_counts(&events);
        let mut panic_batches: Vec<u64> = events
            .iter()
            .filter(|e| e.kind == FlightEventKind::Panic)
            .map(|e| e.a)
            .collect();
        panic_batches.sort_unstable();
        let mut digest: Vec<(&str, JsonValue)> = FLIGHT_EVENT_KINDS
            .iter()
            .zip(counts)
            .map(|(kind, n)| (*kind, JsonValue::Num(n as f64)))
            .collect();
        digest.push((
            "panic_batches",
            JsonValue::Arr(
                panic_batches
                    .into_iter()
                    .map(|s| JsonValue::Num(s as f64))
                    .collect(),
            ),
        ));
        JsonValue::obj(vec![
            ("kind", JsonValue::Str("nvwa-flight".to_string())),
            ("schema_version", JsonValue::Num(1.0)),
            ("reason", JsonValue::Str(reason.to_string())),
            ("cap", JsonValue::Num(self.cap() as f64)),
            ("recorded", JsonValue::Num(self.recorded() as f64)),
            (
                "events",
                JsonValue::Arr(events.into_iter().map(FlightEvent::to_json).collect()),
            ),
            ("digest", JsonValue::obj(digest)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvwa_telemetry::snapshot::{validate_flight_dump, validate_flight_summary};

    #[test]
    fn ring_keeps_the_newest_cap_events() {
        let rec = FlightRecorder::new(4);
        for i in 0..10u64 {
            rec.record(i as f64, FlightEventKind::Admit, i, 0, 1);
        }
        let events = rec.events();
        assert_eq!(rec.recorded(), 10);
        assert_eq!(events.len(), 4);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
        validate_flight_summary(&rec.summary_json()).unwrap();
    }

    #[test]
    fn dump_document_validates_and_counts_kinds() {
        let rec = FlightRecorder::new(16);
        rec.record(1.0, FlightEventKind::Admit, 0, 0, 1);
        rec.record(2.0, FlightEventKind::Admit, 1, 0, 2);
        rec.record(3.0, FlightEventKind::BatchStart, 0, 1, 2);
        rec.record(4.0, FlightEventKind::Panic, 0, 3, 0);
        let dump = rec.dump_json("worker_panic");
        validate_flight_dump(&dump).unwrap();
        let digest = dump.get("digest").unwrap();
        assert_eq!(digest.get("admit").unwrap().as_num(), Some(2.0));
        assert_eq!(digest.get("panic").unwrap().as_num(), Some(1.0));
        let panics = digest.get("panic_batches").unwrap().as_arr().unwrap();
        assert_eq!(panics.len(), 1);
        // Dump bookkeeping shows up in the next summary.
        let summary = rec.summary_json();
        validate_flight_summary(&summary).unwrap();
        assert_eq!(summary.get("dumps").unwrap().as_num(), Some(1.0));
        assert_eq!(
            summary.get("last_dump_reason").unwrap().as_str(),
            Some("worker_panic")
        );
    }

    #[test]
    fn dump_bytes_are_deterministic_under_a_logical_clock() {
        // Same event sequence → byte-identical dumps (the caller controls
        // time and order here; the cross-thread guarantee is the digest).
        let build = || {
            let rec = FlightRecorder::new(8);
            for i in 0..12u64 {
                let kind = if i % 3 == 0 {
                    FlightEventKind::Admit
                } else {
                    FlightEventKind::BatchDone
                };
                rec.record(i as f64 * 10.0, kind, i, i % 2, 1);
            }
            rec.dump_json("explicit").to_string_compact()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn concurrent_recording_retains_a_full_ring() {
        let rec = std::sync::Arc::new(FlightRecorder::new(64));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let rec = std::sync::Arc::clone(&rec);
                scope.spawn(move || {
                    for i in 0..100u64 {
                        rec.record(0.0, FlightEventKind::Admit, t * 1000 + i, t, 0);
                    }
                });
            }
        });
        assert_eq!(rec.recorded(), 400);
        let events = rec.events();
        assert_eq!(events.len(), 64);
        // Sequence numbers are unique and the ring holds the newest ones.
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]));
        assert!(seqs.iter().all(|&s| s >= 400 - 64));
        validate_flight_dump(&rec.dump_json("explicit")).unwrap();
    }
}
