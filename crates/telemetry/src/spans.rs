//! Per-request span chains: the distributed-style tracing layer.
//!
//! A request admitted by the serve path is followed through four stages —
//! queue wait, batch fill wait, alignment, response write — and leaves
//! behind a [`RequestSpans`] chain. Chains are built with
//! [`RequestSpans::chain`] from one monotonic timestamp sequence, so two
//! properties hold **by construction**, not by measurement:
//!
//! 1. spans are contiguous and non-overlapping (each starts where the
//!    previous ended), and
//! 2. the stage durations sum exactly (integer nanoseconds) to the
//!    end-to-end latency.
//!
//! The conformance suite pins exactly-once accounting: every admitted
//! request produces exactly one chain, every chain passes
//! [`RequestSpans::check`].
//!
//! [`SpanLog`] is the bounded collection side: a fixed-capacity log that
//! keeps the first `cap` chains and counts the rest as dropped, so a
//! long soak cannot OOM the server while short conformance runs see
//! every chain.

use crate::json::JsonValue;

/// The serve-path stages, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Admission queue wait: admitted → popped by the batcher.
    Queue,
    /// Batch fill wait: popped → batch execution starts on a worker.
    Fill,
    /// Alignment: batch execution start → done (or the deadline/panic
    /// verdict for requests that never align).
    Align,
    /// Response write: execution done → response frame handed to the
    /// socket.
    Write,
}

impl Stage {
    /// All stages in pipeline order.
    pub const ALL: [Stage; 4] = [Stage::Queue, Stage::Fill, Stage::Align, Stage::Write];

    /// Wire name (also the Chrome-trace span name prefix).
    pub fn name(&self) -> &'static str {
        match self {
            Stage::Queue => "queue",
            Stage::Fill => "fill",
            Stage::Align => "align",
            Stage::Write => "write",
        }
    }

    /// Inverse of [`name`](Stage::name).
    pub fn from_name(name: &str) -> Option<Stage> {
        Stage::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Position in the pipeline order.
    fn rank(&self) -> usize {
        *self as usize
    }
}

/// One stage of one request: `[start_ns, start_ns + dur_ns)` relative to
/// the process telemetry epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSpan {
    /// Which stage.
    pub stage: Stage,
    /// Start, nanoseconds since the telemetry epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// Terminal outcome of a request (mirrors the wire `status`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Aligned and answered.
    Ok,
    /// Expired at batch formation; answered with `deadline`.
    Deadline,
    /// Answered with `error` (worker panic path).
    Error,
}

impl Outcome {
    /// Wire name.
    pub fn name(&self) -> &'static str {
        match self {
            Outcome::Ok => "ok",
            Outcome::Deadline => "deadline",
            Outcome::Error => "error",
        }
    }

    /// Inverse of [`name`](Outcome::name).
    pub fn from_name(name: &str) -> Option<Outcome> {
        match name {
            "ok" => Some(Outcome::Ok),
            "deadline" => Some(Outcome::Deadline),
            "error" => Some(Outcome::Error),
            _ => None,
        }
    }
}

/// The complete span chain of one admitted request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestSpans {
    /// Trace id minted at admission (unique per admitted request).
    pub trace_id: u64,
    /// Connection the request arrived on.
    pub conn: u64,
    /// Caller-assigned read id (echoed in the response).
    pub read_id: u64,
    /// Length bin the batcher placed the read in.
    pub bin: usize,
    /// Terminal outcome.
    pub outcome: Outcome,
    /// Admission time, nanoseconds since the telemetry epoch.
    pub t0_ns: u64,
    /// Contiguous stage spans starting at `t0_ns`.
    pub spans: Vec<StageSpan>,
}

impl RequestSpans {
    /// Builds a chain from per-stage durations. Starts are cumulative
    /// from `t0_ns`, which makes the chain contiguous and its total equal
    /// to the sum of durations by construction.
    pub fn chain(
        trace_id: u64,
        conn: u64,
        read_id: u64,
        bin: usize,
        outcome: Outcome,
        t0_ns: u64,
        stages: &[(Stage, u64)],
    ) -> RequestSpans {
        let mut at = t0_ns;
        let spans = stages
            .iter()
            .map(|&(stage, dur_ns)| {
                let span = StageSpan {
                    stage,
                    start_ns: at,
                    dur_ns,
                };
                at += dur_ns;
                span
            })
            .collect();
        RequestSpans {
            trace_id,
            conn,
            read_id,
            bin,
            outcome,
            t0_ns,
            spans,
        }
    }

    /// End-to-end latency: the exact sum of stage durations.
    pub fn e2e_ns(&self) -> u64 {
        self.spans.iter().map(|s| s.dur_ns).sum()
    }

    /// Checks the chain invariants: non-empty, first span starts at
    /// `t0_ns`, spans contiguous (each starts where the previous ended),
    /// stages strictly in pipeline order, and — implied by contiguity —
    /// durations summing to the end-to-end latency. Returns a description
    /// of the first violation.
    pub fn check(&self) -> Result<(), String> {
        let id = self.trace_id;
        let first = self
            .spans
            .first()
            .ok_or_else(|| format!("trace {id}: empty span chain"))?;
        if first.start_ns != self.t0_ns {
            return Err(format!(
                "trace {id}: first span starts at {} != admission {}",
                first.start_ns, self.t0_ns
            ));
        }
        for pair in self.spans.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            if b.start_ns != a.start_ns + a.dur_ns {
                return Err(format!(
                    "trace {id}: {} starts at {} but {} ended at {}",
                    b.stage.name(),
                    b.start_ns,
                    a.stage.name(),
                    a.start_ns + a.dur_ns
                ));
            }
            if b.stage.rank() <= a.stage.rank() {
                return Err(format!(
                    "trace {id}: stage {} after {} breaks pipeline order",
                    b.stage.name(),
                    a.stage.name()
                ));
            }
        }
        Ok(())
    }

    /// The JSON document for one chain.
    pub fn to_json(&self) -> JsonValue {
        let spans = self
            .spans
            .iter()
            .map(|s| {
                JsonValue::obj(vec![
                    ("stage", JsonValue::Str(s.stage.name().to_string())),
                    ("start_ns", JsonValue::Num(s.start_ns as f64)),
                    ("dur_ns", JsonValue::Num(s.dur_ns as f64)),
                ])
            })
            .collect();
        JsonValue::obj(vec![
            ("trace_id", JsonValue::Num(self.trace_id as f64)),
            ("conn", JsonValue::Num(self.conn as f64)),
            ("read_id", JsonValue::Num(self.read_id as f64)),
            ("bin", JsonValue::Num(self.bin as f64)),
            ("outcome", JsonValue::Str(self.outcome.name().to_string())),
            ("t0_ns", JsonValue::Num(self.t0_ns as f64)),
            ("e2e_ns", JsonValue::Num(self.e2e_ns() as f64)),
            ("spans", JsonValue::Arr(spans)),
        ])
    }

    /// Parses a chain back from its JSON document (used by the
    /// integration test to audit a dumped span log).
    pub fn from_json(v: &JsonValue) -> Result<RequestSpans, String> {
        let num = |key: &str| -> Result<u64, String> {
            v.get(key)
                .and_then(JsonValue::as_num)
                .map(|n| n as u64)
                .ok_or_else(|| format!("span chain missing numeric '{key}'"))
        };
        let outcome = v
            .get("outcome")
            .and_then(JsonValue::as_str)
            .and_then(Outcome::from_name)
            .ok_or("span chain missing valid 'outcome'")?;
        let spans = v
            .get("spans")
            .and_then(JsonValue::as_arr)
            .ok_or("span chain missing 'spans' array")?
            .iter()
            .map(|s| {
                let stage = s
                    .get("stage")
                    .and_then(JsonValue::as_str)
                    .and_then(Stage::from_name)
                    .ok_or("span missing valid 'stage'")?;
                let field = |key: &str| -> Result<u64, String> {
                    s.get(key)
                        .and_then(JsonValue::as_num)
                        .map(|n| n as u64)
                        .ok_or_else(|| format!("span missing numeric '{key}'"))
                };
                Ok(StageSpan {
                    stage,
                    start_ns: field("start_ns")?,
                    dur_ns: field("dur_ns")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let chain = RequestSpans {
            trace_id: num("trace_id")?,
            conn: num("conn")?,
            read_id: num("read_id")?,
            bin: num("bin")? as usize,
            outcome,
            t0_ns: num("t0_ns")?,
            spans,
        };
        let e2e = num("e2e_ns")?;
        if e2e != chain.e2e_ns() {
            return Err(format!(
                "trace {}: e2e_ns {} != span-duration sum {}",
                chain.trace_id,
                e2e,
                chain.e2e_ns()
            ));
        }
        Ok(chain)
    }
}

/// A bounded in-memory log of span chains: keeps the first `cap` chains,
/// counts overflow as dropped.
#[derive(Debug)]
pub struct SpanLog {
    cap: usize,
    chains: Vec<RequestSpans>,
    dropped: u64,
}

impl SpanLog {
    /// An empty log holding at most `cap` chains.
    pub fn new(cap: usize) -> SpanLog {
        SpanLog {
            cap,
            chains: Vec::new(),
            dropped: 0,
        }
    }

    /// Records one finished request's chain.
    pub fn push(&mut self, chain: RequestSpans) {
        if self.chains.len() < self.cap {
            self.chains.push(chain);
        } else {
            self.dropped += 1;
        }
    }

    /// Chains recorded so far.
    pub fn chains(&self) -> &[RequestSpans] {
        &self.chains
    }

    /// Chains rejected because the log was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The full span-log document (`kind: "nvwa-spanlog"`), chains sorted
    /// by trace id so the bytes don't depend on completion order.
    pub fn to_json(&self) -> JsonValue {
        let mut sorted: Vec<&RequestSpans> = self.chains.iter().collect();
        sorted.sort_by_key(|c| c.trace_id);
        JsonValue::obj(vec![
            ("kind", JsonValue::Str("nvwa-spanlog".to_string())),
            ("schema_version", JsonValue::Num(1.0)),
            ("cap", JsonValue::Num(self.cap as f64)),
            ("dropped", JsonValue::Num(self.dropped as f64)),
            (
                "chains",
                JsonValue::Arr(sorted.iter().map(|c| c.to_json()).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok_chain(id: u64) -> RequestSpans {
        RequestSpans::chain(
            id,
            3,
            40 + id,
            1,
            Outcome::Ok,
            1_000,
            &[
                (Stage::Queue, 500),
                (Stage::Fill, 250),
                (Stage::Align, 2_000),
                (Stage::Write, 30),
            ],
        )
    }

    #[test]
    fn chain_is_contiguous_and_sums_exactly() {
        let c = ok_chain(7);
        c.check().unwrap();
        assert_eq!(c.e2e_ns(), 2_780);
        assert_eq!(c.spans[3].start_ns + c.spans[3].dur_ns, 1_000 + 2_780);
    }

    #[test]
    fn deadline_chain_skips_align() {
        // Expired requests never reach a worker's align stage; the chain
        // is queue → fill → write and still checks out.
        let c = RequestSpans::chain(
            9,
            0,
            0,
            2,
            Outcome::Deadline,
            0,
            &[
                (Stage::Queue, 10_000),
                (Stage::Fill, 5_000),
                (Stage::Write, 40),
            ],
        );
        c.check().unwrap();
        assert_eq!(c.e2e_ns(), 15_040);
    }

    #[test]
    fn check_rejects_gaps_overlaps_and_disorder() {
        let mut gap = ok_chain(1);
        gap.spans[2].start_ns += 1;
        assert!(gap.check().unwrap_err().contains("align starts at"));

        let mut overlap = ok_chain(2);
        overlap.spans[1].start_ns -= 1;
        assert!(overlap.check().is_err());

        let mut disorder = ok_chain(3);
        disorder.spans.swap(1, 2);
        assert!(disorder.check().is_err());

        let mut bad_start = ok_chain(4);
        bad_start.t0_ns += 5;
        assert!(bad_start.check().unwrap_err().contains("first span"));

        let empty = RequestSpans::chain(5, 0, 0, 0, Outcome::Error, 0, &[]);
        assert!(empty.check().unwrap_err().contains("empty"));
    }

    #[test]
    fn json_round_trip() {
        let c = ok_chain(11);
        let parsed = RequestSpans::from_json(&c.to_json()).unwrap();
        assert_eq!(parsed, c);
        // A lying e2e_ns is caught.
        let mut doc = c.to_json();
        if let JsonValue::Obj(entries) = &mut doc {
            for (k, v) in entries.iter_mut() {
                if k == "e2e_ns" {
                    *v = JsonValue::Num(1.0);
                }
            }
        }
        assert!(RequestSpans::from_json(&doc)
            .unwrap_err()
            .contains("e2e_ns"));
    }

    #[test]
    fn span_log_caps_and_sorts() {
        let mut log = SpanLog::new(2);
        log.push(ok_chain(5));
        log.push(ok_chain(1));
        log.push(ok_chain(9));
        assert_eq!(log.chains().len(), 2);
        assert_eq!(log.dropped(), 1);
        let doc = log.to_json();
        let chains = doc.get("chains").and_then(JsonValue::as_arr).unwrap();
        let ids: Vec<u64> = chains
            .iter()
            .map(|c| c.get("trace_id").and_then(JsonValue::as_num).unwrap() as u64)
            .collect();
        assert_eq!(ids, vec![1, 5]);
        crate::snapshot::validate_span_log(&doc).unwrap();
    }
}
