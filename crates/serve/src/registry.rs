//! Multi-tenant sharded index registry (DESIGN.md §14).
//!
//! A serving process that answers for one genome wastes the machine: the
//! six species profiles of Fig. 14 are independent references whose
//! indexes can sit side by side, each serving its own clients. The
//! registry owns that set:
//!
//! * **Tenants** are named references built deterministically from a
//!   [`Species`] profile at a chosen scale — the same `(species, scale)`
//!   always synthesizes the same genome (the species seed is fixed), so an
//!   evicted tenant reloads bit-identically and clients never need to ship
//!   reference data.
//! * **Shards** are deterministic traffic partitions of a tenant: request
//!   routing hashes the client's genome-region hint (or, absent one, the
//!   read itself) onto `0..shards`. Every shard serves the whole reference
//!   through a cheap [`Arc<ReferenceIndex>`] clone (the flattened genome
//!   is already shared, PR 4), which keeps responses bit-identical to the
//!   offline aligner no matter which shard answers and makes rerouting
//!   around a dead shard trivially correct.
//! * **Memory budget + LRU**: loading a tenant that would exceed the
//!   configured budget evicts the least-recently-used *idle* tenant
//!   first. A tenant with requests in flight is never evicted, and a
//!   budget smaller than a single tenant is a clean error, not a thrash.
//! * **Admission quotas**: each tenant may carry a cap on concurrently
//!   admitted requests. [`IndexRegistry::try_admit`] hands out RAII
//!   [`AdmitGuard`]s, so the in-flight count is exactly-once by `Drop` —
//!   panic-safe, no manual decrement to forget.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use nvwa_align::pipeline::ReferenceIndex;
use nvwa_genome::species::Species;
use nvwa_telemetry::JsonValue;

/// Default suffix-array sampling rate for tenant indexes (matches the
/// serving default used by `nvwa serve`).
pub const DEFAULT_SA_RATE: u32 = 32;

/// One tenant's configuration.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Registry name (wire `tenant` field). Defaults to [`Species::key`].
    pub name: String,
    /// Species profile the reference is synthesized from.
    pub species: Species,
    /// Genome scale factor (see [`Species::reference_params`]).
    pub scale: f64,
    /// Number of traffic shards (≥ 1).
    pub shards: usize,
    /// Maximum concurrently admitted requests; `None` = unlimited.
    pub quota: Option<u64>,
    /// Suffix-array sampling rate for the tenant's index.
    pub sa_rate: u32,
}

impl TenantSpec {
    /// A single-shard, unlimited-quota tenant named by the species key.
    pub fn new(species: Species, scale: f64) -> TenantSpec {
        TenantSpec {
            name: species.key().to_string(),
            species,
            scale,
            shards: 1,
            quota: None,
            sa_rate: DEFAULT_SA_RATE,
        }
    }
}

/// Registry failures, each naming the violated constraint.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryError {
    /// No tenant with that name is registered.
    UnknownTenant(String),
    /// A tenant with that name already exists.
    DuplicateTenant(String),
    /// The tenant alone exceeds the whole memory budget — no eviction
    /// schedule can ever fit it.
    BudgetTooSmall {
        /// Tenant being loaded.
        tenant: String,
        /// Bytes the tenant's index needs.
        need: usize,
        /// The configured budget.
        budget: usize,
    },
    /// The budget is exceeded but every loaded tenant has requests in
    /// flight — nothing is evictable right now.
    EvictionBlocked {
        /// Tenant being loaded.
        tenant: String,
        /// Bytes still missing after evicting everything idle.
        need: usize,
    },
    /// Eviction refused: the tenant has requests in flight.
    TenantInFlight {
        /// The tenant.
        tenant: String,
        /// Its current in-flight count.
        in_flight: u64,
    },
    /// The tenant's admission quota is exhausted.
    QuotaExhausted {
        /// The tenant.
        tenant: String,
        /// The configured quota.
        limit: u64,
    },
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::UnknownTenant(t) => write!(f, "unknown tenant {t:?}"),
            RegistryError::DuplicateTenant(t) => write!(f, "tenant {t:?} already registered"),
            RegistryError::BudgetTooSmall {
                tenant,
                need,
                budget,
            } => write!(
                f,
                "tenant {tenant:?} needs {need} bytes but the registry budget is {budget} bytes"
            ),
            RegistryError::EvictionBlocked { tenant, need } => write!(
                f,
                "cannot load tenant {tenant:?}: {need} bytes over budget and every \
                 loaded tenant is in flight"
            ),
            RegistryError::TenantInFlight { tenant, in_flight } => write!(
                f,
                "cannot evict tenant {tenant:?}: {in_flight} requests in flight"
            ),
            RegistryError::QuotaExhausted { tenant, limit } => {
                write!(f, "tenant {tenant:?} admission quota ({limit}) exhausted")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// RAII token for one admitted request: holding it counts against the
/// tenant's quota; dropping it (response written, or any failure path)
/// releases the slot. Exactly-once by construction.
#[derive(Debug)]
pub struct AdmitGuard {
    in_flight: Arc<AtomicU64>,
}

impl Drop for AdmitGuard {
    fn drop(&mut self) {
        self.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

struct TenantEntry {
    spec: TenantSpec,
    /// `None` while evicted.
    index: Option<Arc<ReferenceIndex>>,
    /// Heap bytes of the loaded index (0 while evicted).
    mem_bytes: usize,
    /// Logical-clock timestamp of the last checkout (LRU order).
    last_used: u64,
    /// Requests admitted and not yet answered. Shared with the guards.
    in_flight: Arc<AtomicU64>,
    /// Times the index has been (re)built — an eviction/reload odometer.
    loads: u64,
}

struct Inner {
    tenants: HashMap<String, TenantEntry>,
    clock: u64,
}

/// The registry: named tenants under one optional memory budget.
pub struct IndexRegistry {
    inner: Mutex<Inner>,
    /// Total index bytes allowed across loaded tenants; `None` = unbounded.
    budget: Option<usize>,
}

impl IndexRegistry {
    /// An empty registry with an optional byte budget.
    pub fn new(budget: Option<usize>) -> IndexRegistry {
        IndexRegistry {
            inner: Mutex::new(Inner {
                tenants: HashMap::new(),
                clock: 0,
            }),
            budget,
        }
    }

    /// The configured budget.
    pub fn budget(&self) -> Option<usize> {
        self.budget
    }

    /// Total heap bytes of currently loaded tenant indexes.
    pub fn mem_used(&self) -> usize {
        let inner = self.inner.lock().unwrap();
        inner.tenants.values().map(|t| t.mem_bytes).sum()
    }

    /// Registers and loads a tenant, evicting LRU idle tenants if the
    /// budget requires it.
    ///
    /// # Errors
    ///
    /// [`RegistryError::DuplicateTenant`], [`RegistryError::BudgetTooSmall`]
    /// or [`RegistryError::EvictionBlocked`].
    pub fn load(&self, spec: TenantSpec) -> Result<Arc<ReferenceIndex>, RegistryError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.tenants.contains_key(&spec.name) {
            return Err(RegistryError::DuplicateTenant(spec.name));
        }
        let name = spec.name.clone();
        inner.tenants.insert(
            name.clone(),
            TenantEntry {
                spec,
                index: None,
                mem_bytes: 0,
                last_used: 0,
                in_flight: Arc::new(AtomicU64::new(0)),
                loads: 0,
            },
        );
        self.checkout_locked(&mut inner, &name)
    }

    /// Returns the tenant's index, rebuilding it if it was evicted (the
    /// rebuild is bit-identical: the species seed is fixed). Bumps the
    /// tenant's LRU clock.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownTenant`], or a budget error on reload.
    pub fn checkout(&self, name: &str) -> Result<Arc<ReferenceIndex>, RegistryError> {
        let mut inner = self.inner.lock().unwrap();
        self.checkout_locked(&mut inner, name)
    }

    fn checkout_locked(
        &self,
        inner: &mut Inner,
        name: &str,
    ) -> Result<Arc<ReferenceIndex>, RegistryError> {
        inner.clock += 1;
        let clock = inner.clock;
        let entry = inner
            .tenants
            .get_mut(name)
            .ok_or_else(|| RegistryError::UnknownTenant(name.to_string()))?;
        entry.last_used = clock;
        if let Some(index) = &entry.index {
            return Ok(Arc::clone(index));
        }
        // (Re)build: deterministic from the species profile, so a reload
        // after eviction serves bit-identical responses.
        let spec = entry.spec.clone();
        let genome = spec.species.synthesize(spec.scale);
        let index = Arc::new(ReferenceIndex::build(&genome, spec.sa_rate));
        let need = index.heap_bytes();
        if let Some(budget) = self.budget {
            if need > budget {
                inner.tenants.remove(name);
                return Err(RegistryError::BudgetTooSmall {
                    tenant: name.to_string(),
                    need,
                    budget,
                });
            }
            self.evict_until_fits(inner, name, need, budget)?;
        }
        let entry = inner.tenants.get_mut(name).expect("entry present");
        entry.index = Some(Arc::clone(&index));
        entry.mem_bytes = need;
        entry.loads += 1;
        Ok(index)
    }

    /// Evicts LRU idle tenants (never `loading`) until `need` more bytes
    /// fit under `budget`.
    fn evict_until_fits(
        &self,
        inner: &mut Inner,
        loading: &str,
        need: usize,
        budget: usize,
    ) -> Result<(), RegistryError> {
        loop {
            let used: usize = inner.tenants.values().map(|t| t.mem_bytes).sum();
            if used + need <= budget {
                return Ok(());
            }
            let victim = inner
                .tenants
                .iter()
                .filter(|(n, t)| {
                    n.as_str() != loading
                        && t.index.is_some()
                        && t.in_flight.load(Ordering::Acquire) == 0
                })
                .min_by_key(|(_, t)| t.last_used)
                .map(|(n, _)| n.clone());
            match victim {
                Some(v) => {
                    let entry = inner.tenants.get_mut(&v).expect("victim present");
                    entry.index = None;
                    entry.mem_bytes = 0;
                }
                None => {
                    inner.tenants.remove(loading);
                    return Err(RegistryError::EvictionBlocked {
                        tenant: loading.to_string(),
                        need: used + need - budget,
                    });
                }
            }
        }
    }

    /// Explicitly evicts a tenant's index (the registration stays; the
    /// next [`IndexRegistry::checkout`] rebuilds bit-identically).
    /// Returns the bytes released.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownTenant`], or
    /// [`RegistryError::TenantInFlight`] — an in-flight tenant is never
    /// evicted.
    pub fn evict(&self, name: &str) -> Result<usize, RegistryError> {
        let mut inner = self.inner.lock().unwrap();
        let entry = inner
            .tenants
            .get_mut(name)
            .ok_or_else(|| RegistryError::UnknownTenant(name.to_string()))?;
        let in_flight = entry.in_flight.load(Ordering::Acquire);
        if in_flight > 0 {
            return Err(RegistryError::TenantInFlight {
                tenant: name.to_string(),
                in_flight,
            });
        }
        let freed = entry.mem_bytes;
        entry.index = None;
        entry.mem_bytes = 0;
        Ok(freed)
    }

    /// Admits one request against the tenant's quota. The returned guard
    /// must live until the response is written.
    ///
    /// # Errors
    ///
    /// [`RegistryError::UnknownTenant`] or
    /// [`RegistryError::QuotaExhausted`] — the `quota`-th concurrent
    /// request is admitted, the `quota + 1`-th is refused.
    pub fn try_admit(&self, name: &str) -> Result<AdmitGuard, RegistryError> {
        let inner = self.inner.lock().unwrap();
        let entry = inner
            .tenants
            .get(name)
            .ok_or_else(|| RegistryError::UnknownTenant(name.to_string()))?;
        let quota = entry.spec.quota;
        let counter = Arc::clone(&entry.in_flight);
        drop(inner);
        try_admit_counted(&counter, quota).ok_or_else(|| RegistryError::QuotaExhausted {
            tenant: name.to_string(),
            limit: quota.unwrap_or(u64::MAX),
        })
    }

    /// The tenant's spec (shards, quota, …), if registered.
    pub fn spec(&self, name: &str) -> Option<TenantSpec> {
        let inner = self.inner.lock().unwrap();
        inner.tenants.get(name).map(|t| t.spec.clone())
    }

    /// Current in-flight count of a tenant (0 for unknown tenants).
    pub fn in_flight(&self, name: &str) -> u64 {
        let inner = self.inner.lock().unwrap();
        inner
            .tenants
            .get(name)
            .map_or(0, |t| t.in_flight.load(Ordering::Acquire))
    }

    /// Times the tenant's index has been (re)built.
    pub fn loads(&self, name: &str) -> u64 {
        let inner = self.inner.lock().unwrap();
        inner.tenants.get(name).map_or(0, |t| t.loads)
    }

    /// Whether the tenant's index is currently resident.
    pub fn is_loaded(&self, name: &str) -> bool {
        let inner = self.inner.lock().unwrap();
        inner.tenants.get(name).is_some_and(|t| t.index.is_some())
    }

    /// Registered tenant names, sorted (stable for reports).
    pub fn tenant_names(&self) -> Vec<String> {
        let inner = self.inner.lock().unwrap();
        let mut names: Vec<String> = inner.tenants.keys().cloned().collect();
        names.sort();
        names
    }

    /// A JSON summary of the registry (stats endpoints and tests).
    pub fn summary_json(&self) -> JsonValue {
        let inner = self.inner.lock().unwrap();
        let mut names: Vec<&String> = inner.tenants.keys().collect();
        names.sort();
        let tenants: Vec<JsonValue> = names
            .iter()
            .map(|n| {
                let t = &inner.tenants[*n];
                JsonValue::obj(vec![
                    ("name", JsonValue::Str((*n).clone())),
                    ("species", JsonValue::Str(t.spec.species.key().to_string())),
                    ("shards", JsonValue::Num(t.spec.shards as f64)),
                    ("loaded", JsonValue::Bool(t.index.is_some())),
                    ("mem_bytes", JsonValue::Num(t.mem_bytes as f64)),
                    (
                        "in_flight",
                        JsonValue::Num(t.in_flight.load(Ordering::Acquire) as f64),
                    ),
                    ("loads", JsonValue::Num(t.loads as f64)),
                    (
                        "quota",
                        t.spec
                            .quota
                            .map_or(JsonValue::Null, |q| JsonValue::Num(q as f64)),
                    ),
                ])
            })
            .collect();
        let used: usize = inner.tenants.values().map(|t| t.mem_bytes).sum();
        JsonValue::obj(vec![
            ("mem_used_bytes", JsonValue::Num(used as f64)),
            (
                "mem_budget_bytes",
                self.budget
                    .map_or(JsonValue::Null, |b| JsonValue::Num(b as f64)),
            ),
            ("tenants", JsonValue::Arr(tenants)),
        ])
    }
}

/// Reserves one in-flight slot against an optional quota; `None` when the
/// quota is exhausted. Shared by the registry and the server's routing
/// table (which caches the counter to keep admission lock-free).
pub(crate) fn try_admit_counted(
    in_flight: &Arc<AtomicU64>,
    quota: Option<u64>,
) -> Option<AdmitGuard> {
    match quota {
        None => {
            in_flight.fetch_add(1, Ordering::AcqRel);
        }
        Some(limit) => {
            let mut cur = in_flight.load(Ordering::Acquire);
            loop {
                if cur >= limit {
                    return None;
                }
                match in_flight.compare_exchange_weak(
                    cur,
                    cur + 1,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => break,
                    Err(now) => cur = now,
                }
            }
        }
    }
    Some(AdmitGuard {
        in_flight: Arc::clone(in_flight),
    })
}

/// The shard-routing hash: the client's region hint when present,
/// otherwise an FNV-1a hash of the read codes. Pure, so routing is
/// deterministic across runs and across the threaded/reactor frontends.
pub fn region_hash(region: Option<u64>, codes: &[u8]) -> u64 {
    match region {
        Some(r) => {
            // splitmix64 finalizer — spreads adjacent coordinates.
            let mut z = r.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        None => {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &c in codes {
                h ^= u64::from(c);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h
        }
    }
}

/// Deterministic shard choice: start at `hash % shards` and probe forward
/// past dead shards. `None` when no shard is live.
pub fn route_shard(hash: u64, shards: usize, live: impl Fn(usize) -> bool) -> Option<usize> {
    if shards == 0 {
        return None;
    }
    let start = (hash % shards as u64) as usize;
    (0..shards).map(|i| (start + i) % shards).find(|&s| live(s))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(species: Species) -> TenantSpec {
        // scale 0.0 clamps every species to the 40 kb floor — fast builds.
        TenantSpec::new(species, 0.0)
    }

    fn tiny_bytes() -> usize {
        let genome = Species::CaenorhabditisElegans.synthesize(0.0);
        ReferenceIndex::build(&genome, DEFAULT_SA_RATE).heap_bytes()
    }

    #[test]
    fn budget_smaller_than_one_tenant_errors_cleanly() {
        let registry = IndexRegistry::new(Some(1024));
        let err = registry
            .load(tiny(Species::CaenorhabditisElegans))
            .unwrap_err();
        assert!(
            matches!(err, RegistryError::BudgetTooSmall { budget: 1024, .. }),
            "{err}"
        );
        // The failed load leaves no half-registered tenant behind.
        assert!(registry.tenant_names().is_empty());
        assert_eq!(registry.mem_used(), 0);
    }

    #[test]
    fn lru_eviction_under_budget_and_bit_identical_reload() {
        // Budget fits exactly one tenant: loading the second evicts the
        // first (LRU), and checking the first out again rebuilds it.
        let one = tiny_bytes();
        let registry = IndexRegistry::new(Some(one + one / 2));
        let a = registry.load(tiny(Species::CaenorhabditisElegans)).unwrap();
        let a_flat = a.flat().to_vec();
        let a_bytes = a.heap_bytes();
        registry.load(tiny(Species::HomoSapiens)).unwrap();
        assert!(!registry.is_loaded("caenorhabditis_elegans"));
        assert!(registry.is_loaded("homo_sapiens"));
        // Reload is bit-identical: same flat codes, same footprint.
        let a2 = registry.checkout("caenorhabditis_elegans").unwrap();
        assert_eq!(a2.flat(), a_flat.as_slice());
        assert_eq!(a2.heap_bytes(), a_bytes);
        assert_eq!(registry.loads("caenorhabditis_elegans"), 2);
        // …and the reload evicted the other tenant in turn.
        assert!(!registry.is_loaded("homo_sapiens"));
    }

    #[test]
    fn evict_while_in_flight_is_refused() {
        let registry = IndexRegistry::new(None);
        registry.load(tiny(Species::CaenorhabditisElegans)).unwrap();
        let guard = registry.try_admit("caenorhabditis_elegans").unwrap();
        let err = registry.evict("caenorhabditis_elegans").unwrap_err();
        assert_eq!(
            err,
            RegistryError::TenantInFlight {
                tenant: "caenorhabditis_elegans".to_string(),
                in_flight: 1,
            }
        );
        drop(guard);
        assert!(registry.evict("caenorhabditis_elegans").unwrap() > 0);
        assert!(!registry.is_loaded("caenorhabditis_elegans"));
    }

    #[test]
    fn lru_never_evicts_an_in_flight_tenant() {
        let one = tiny_bytes();
        let registry = IndexRegistry::new(Some(2 * one + one / 2));
        registry.load(tiny(Species::CaenorhabditisElegans)).unwrap();
        registry.load(tiny(Species::HomoSapiens)).unwrap();
        // The LRU victim would be c_elegans, but it is in flight — the
        // idle homo_sapiens goes instead.
        let guard = registry.try_admit("caenorhabditis_elegans").unwrap();
        registry.load(tiny(Species::ZapusHudsonius)).unwrap();
        assert!(registry.is_loaded("caenorhabditis_elegans"));
        assert!(!registry.is_loaded("homo_sapiens"));
        // With every loaded tenant in flight, loading fails cleanly.
        let guard2 = registry.try_admit("zapus_hudsonius").unwrap();
        let err = registry
            .load(tiny(Species::CamelusDromedarius))
            .unwrap_err();
        assert!(
            matches!(err, RegistryError::EvictionBlocked { .. }),
            "{err}"
        );
        drop((guard, guard2));
    }

    #[test]
    fn quota_sheds_at_exactly_the_limit_with_exactly_once_accounting() {
        let registry = IndexRegistry::new(None);
        let mut spec = tiny(Species::CaenorhabditisElegans);
        spec.quota = Some(2);
        registry.load(spec).unwrap();
        let g1 = registry.try_admit("caenorhabditis_elegans").unwrap();
        let g2 = registry.try_admit("caenorhabditis_elegans").unwrap();
        // The quota-th request is admitted; quota + 1 is refused.
        let err = registry.try_admit("caenorhabditis_elegans").unwrap_err();
        assert_eq!(
            err,
            RegistryError::QuotaExhausted {
                tenant: "caenorhabditis_elegans".to_string(),
                limit: 2,
            }
        );
        assert_eq!(registry.in_flight("caenorhabditis_elegans"), 2);
        // Dropping a guard releases exactly one slot.
        drop(g1);
        assert_eq!(registry.in_flight("caenorhabditis_elegans"), 1);
        let g3 = registry.try_admit("caenorhabditis_elegans").unwrap();
        drop((g2, g3));
        assert_eq!(registry.in_flight("caenorhabditis_elegans"), 0);
    }

    #[test]
    fn routing_is_deterministic_and_skips_dead_shards() {
        let codes = [0u8, 1, 2, 3, 1, 1, 2];
        let h1 = region_hash(None, &codes);
        assert_eq!(h1, region_hash(None, &codes), "code hash is stable");
        assert_eq!(region_hash(Some(7), &codes), region_hash(Some(7), &[]));
        let all_live = route_shard(h1, 4, |_| true).unwrap();
        assert_eq!(route_shard(h1, 4, |_| true).unwrap(), all_live);
        // Killing the chosen shard reroutes to the next live one,
        // deterministically.
        let rerouted = route_shard(h1, 4, |s| s != all_live).unwrap();
        assert_eq!(rerouted, (all_live + 1) % 4);
        assert_eq!(route_shard(h1, 4, |_| false), None);
        assert_eq!(route_shard(h1, 0, |_| true), None);
    }

    #[test]
    fn duplicate_and_unknown_tenants_are_named_errors() {
        let registry = IndexRegistry::new(None);
        registry.load(tiny(Species::CaenorhabditisElegans)).unwrap();
        let err = registry
            .load(tiny(Species::CaenorhabditisElegans))
            .unwrap_err();
        assert!(matches!(err, RegistryError::DuplicateTenant(_)));
        assert!(matches!(
            registry.checkout("nope").unwrap_err(),
            RegistryError::UnknownTenant(_)
        ));
        assert!(matches!(
            registry.try_admit("nope").unwrap_err(),
            RegistryError::UnknownTenant(_)
        ));
        let doc = registry.summary_json();
        assert!(doc.get("tenants").is_some());
    }
}
