//! Myers bit-parallel approximate string matching.
//!
//! GenASM (and the Bitap lineage the paper cites for the seed-extension
//! phase) accelerate extension with *edit-distance* automata rather than
//! scored dynamic programming. This module implements Myers' 1999
//! bit-vector algorithm — the software equivalent of those units — so the
//! loosely coupled extension interface can be exercised with a second
//! algorithm family, as the paper's flexibility discussion requires.

/// Result of a Myers semi-global search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EditMatch {
    /// Edit distance of the best match.
    pub distance: u32,
    /// Exclusive end position of the best match in the target.
    pub target_end: usize,
}

/// Computes the edit distance between `pattern` and `text` (global, both
/// consumed) with Myers' bit-parallel recurrence.
///
/// # Panics
///
/// Panics if `pattern` is empty or longer than 64 symbols (one machine
/// word; the hardware designs tile longer patterns).
pub fn edit_distance(pattern: &[u8], text: &[u8]) -> u32 {
    let (mut state, eq) = init(pattern);
    let mut score = pattern.len() as u32;
    for &c in text {
        score = state.step(eq[c as usize], score);
    }
    // Global: remaining vertical moves are already accounted for because
    // the score tracks the last row; deletions of trailing text columns are
    // folded into the column steps.
    score
}

/// Semi-global search: the whole `pattern` against any substring of `text`
/// ending anywhere (free leading/trailing text). Returns the best match.
///
/// # Panics
///
/// Panics if `pattern` is empty or longer than 64 symbols.
pub fn best_match(pattern: &[u8], text: &[u8]) -> EditMatch {
    let (mut state, eq) = init(pattern);
    let mut score = pattern.len() as u32;
    let mut best = EditMatch {
        distance: score,
        target_end: 0,
    };
    for (j, &c) in text.iter().enumerate() {
        score = state.step_semiglobal(eq[c as usize], score);
        if score < best.distance {
            best = EditMatch {
                distance: score,
                target_end: j + 1,
            };
        }
    }
    best
}

/// The two bit-vectors of Myers' algorithm.
struct MyersState {
    pv: u64,
    mv: u64,
    high_bit: u64,
}

fn init(pattern: &[u8]) -> (MyersState, [u64; 4]) {
    assert!(!pattern.is_empty(), "pattern must be non-empty");
    assert!(pattern.len() <= 64, "pattern longer than one word");
    let mut eq = [0u64; 4];
    for (i, &c) in pattern.iter().enumerate() {
        assert!(c < 4, "codes must be in 0..4");
        eq[c as usize] |= 1 << i;
    }
    (
        MyersState {
            pv: u64::MAX,
            mv: 0,
            high_bit: 1 << (pattern.len() - 1),
        },
        eq,
    )
}

impl MyersState {
    /// One column step with the global (column-anchored) recurrence.
    fn step(&mut self, eq: u64, score: u32) -> u32 {
        self.advance(eq, score, true)
    }

    /// One column step with free leading gaps in the text.
    fn step_semiglobal(&mut self, eq: u64, score: u32) -> u32 {
        self.advance(eq, score, false)
    }

    fn advance(&mut self, eq: u64, mut score: u32, carry_in: bool) -> u32 {
        let xv = eq | self.mv;
        let xh = (((eq & self.pv).wrapping_add(self.pv)) ^ self.pv) | eq;
        let ph = self.mv | !(xh | self.pv);
        let mh = self.pv & xh;
        if ph & self.high_bit != 0 {
            score += 1;
        }
        if mh & self.high_bit != 0 {
            score -= 1;
        }
        let mut ph_shift = ph << 1;
        let mh_shift = mh << 1;
        if carry_in {
            // Global alignment charges the text-consuming gap in row 0.
            ph_shift |= 1;
        }
        self.pv = mh_shift | !(xv | ph_shift);
        self.mv = ph_shift & xv;
        score
    }
}

/// Naive O(mn) edit distance for validation.
pub fn edit_distance_naive(pattern: &[u8], text: &[u8]) -> u32 {
    let m = pattern.len();
    let n = text.len();
    let mut prev: Vec<u32> = (0..=n as u32).collect();
    let mut curr = vec![0u32; n + 1];
    for i in 1..=m {
        curr[0] = i as u32;
        for j in 1..=n {
            let sub = prev[j - 1] + u32::from(pattern[i - 1] != text[j - 1]);
            curr[j] = sub.min(prev[j] + 1).min(curr[j - 1] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[n]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_codes(len: usize, mut state: u64) -> Vec<u8> {
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) & 0b11) as u8
            })
            .collect()
    }

    #[test]
    fn identical_strings_have_zero_distance() {
        let s = rand_codes(40, 1);
        assert_eq!(edit_distance(&s, &s), 0);
    }

    #[test]
    fn matches_naive_on_random_pairs() {
        for seed in 0..20u64 {
            let m = 1 + (seed as usize * 7) % 60;
            let n = 1 + (seed as usize * 11) % 70;
            let p = rand_codes(m, seed);
            let t = rand_codes(n, seed ^ 0xff);
            assert_eq!(
                edit_distance(&p, &t),
                edit_distance_naive(&p, &t),
                "seed {seed} m {m} n {n}"
            );
        }
    }

    #[test]
    fn single_edit_cases() {
        // Substitution.
        assert_eq!(edit_distance(&[0, 1, 2, 3], &[0, 1, 3, 3]), 1);
        // Insertion in text.
        assert_eq!(edit_distance(&[0, 1, 2], &[0, 1, 3, 2]), 1);
        // Deletion from text.
        assert_eq!(edit_distance(&[0, 1, 2, 3], &[0, 1, 3]), 1);
    }

    #[test]
    fn semiglobal_finds_embedded_pattern() {
        let pattern = rand_codes(24, 9);
        let mut text = rand_codes(50, 3);
        text.extend_from_slice(&pattern);
        text.extend(rand_codes(30, 5));
        let m = best_match(&pattern, &text);
        assert_eq!(m.distance, 0);
        assert_eq!(m.target_end, 50 + 24);
    }

    #[test]
    fn semiglobal_tolerates_edits() {
        let pattern = rand_codes(30, 21);
        let mut noisy = pattern.clone();
        noisy[10] = (noisy[10] + 1) % 4; // one substitution
        noisy.remove(20); // one deletion
        let mut text = rand_codes(40, 7);
        let expect_end = text.len() + noisy.len();
        text.extend_from_slice(&noisy);
        text.extend(rand_codes(40, 11));
        let m = best_match(&pattern, &text);
        assert!(m.distance <= 2, "distance {}", m.distance);
        assert!((m.target_end as i64 - expect_end as i64).abs() <= 2);
    }

    #[test]
    #[should_panic(expected = "pattern longer than one word")]
    fn oversized_pattern_panics() {
        let _ = edit_distance(&[0u8; 65], &[0]);
    }

    #[test]
    #[should_panic(expected = "pattern must be non-empty")]
    fn empty_pattern_panics() {
        let _ = edit_distance(&[], &[0]);
    }
}
