//! End-to-end tests of the live observability plane (ISSUE PR7).
//!
//! The acceptance bar: a closed-loop loadgen run produces (1) a span log
//! in which every admitted request has a complete, non-overlapping span
//! chain whose stage durations sum exactly to its end-to-end latency,
//! (2) at least two mid-run `stats` snapshots that pass the schema
//! validator, and (3) a flight-recorder dump under an injected worker
//! panic whose digest is identical at 1, 2 and 8 workers.

use std::sync::{Arc, OnceLock};
use std::time::Duration;

use nvwa::align::pipeline::ReferenceIndex;
use nvwa::genome::{ReadSimParams, ReadSimulator, ReferenceGenome};
use nvwa::serve::loadgen::{self, ref_params, ArrivalMode, LoadgenConfig};
use nvwa::serve::{BatcherConfig, Server, ServerConfig};
use nvwa::telemetry::snapshot::{validate_span_log, validate_stats_response};
use nvwa::telemetry::{JsonValue, Outcome, RequestSpans};

const REF_LEN: usize = 60_000;
const REF_SEED: u64 = 5;
const READ_SEED: u64 = 11;
const CORPUS: usize = 600;

struct Fixture {
    index: Arc<ReferenceIndex>,
    reads: Vec<Vec<u8>>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let genome = ReferenceGenome::synthesize(&ref_params(REF_LEN), REF_SEED);
        let index = Arc::new(ReferenceIndex::build(&genome, 32));
        let mut sim = ReadSimulator::new(&genome, ReadSimParams::illumina_101(), READ_SEED);
        let reads = sim
            .simulate_reads(CORPUS)
            .into_iter()
            .map(|r| r.seq.codes().to_vec())
            .collect();
        Fixture { index, reads }
    })
}

fn start(config: ServerConfig) -> Server {
    Server::start(Arc::clone(&fixture().index), config).expect("server start")
}

#[test]
fn every_admitted_request_leaves_a_complete_span_chain_summing_to_its_latency() {
    let server = start(ServerConfig {
        workers: 2,
        batch: BatcherConfig {
            max_batch: 16,
            ..BatcherConfig::default()
        },
        ..ServerConfig::default()
    });
    let addr = server.local_addr().to_string();
    let report = loadgen::run(
        &addr,
        &fixture().reads,
        &LoadgenConfig {
            connections: 2,
            mode: ArrivalMode::Closed { window: 16 },
            ..LoadgenConfig::default()
        },
    )
    .expect("loadgen");
    let metrics = server.shutdown();
    assert!(report.is_lossless(), "lost/duplicated responses");
    assert_eq!(report.ok, report.received, "all requests served ok");

    // Exactly-once accounting: one chain per admission, none dropped at
    // the default span-log capacity.
    let admitted = metrics.counter("serve.requests_admitted");
    let (retained, dropped) = metrics.span_chain_counts();
    assert_eq!(dropped, 0, "span log dropped chains at default capacity");
    assert_eq!(retained as u64, admitted, "one chain per admitted request");
    assert_eq!(admitted, report.ok, "closed loop: every send was admitted");

    // The span-log document validates, which checks each chain:
    // non-empty, contiguous (no gaps, no overlaps), pipeline-ordered.
    let doc = metrics.span_log_doc();
    validate_span_log(&doc).expect("span log schema");

    // Re-derive the sum property explicitly: the four stages partition
    // the request's lifetime, so their durations sum to its e2e latency.
    let chains = doc.get("chains").and_then(JsonValue::as_arr).unwrap();
    assert_eq!(chains.len(), retained);
    for chain_doc in chains {
        let chain = RequestSpans::from_json(chain_doc).expect("chain decodes");
        chain.check().expect("chain is contiguous and ordered");
        assert_eq!(chain.outcome, Outcome::Ok);
        assert_eq!(chain.spans.len(), 4, "queue/fill/align/write");
        let stage_sum: u64 = chain.spans.iter().map(|s| s.dur_ns).sum();
        assert_eq!(stage_sum, chain.e2e_ns(), "stages partition the latency");
        let last = chain.spans.last().unwrap();
        assert_eq!(
            chain.t0_ns + chain.e2e_ns(),
            last.start_ns + last.dur_ns,
            "chain ends exactly at t0 + e2e"
        );
    }
}

#[test]
fn mid_run_stats_scrapes_validate_and_carry_slo_and_flight_views() {
    let server = start(ServerConfig {
        workers: 2,
        batch: BatcherConfig {
            max_batch: 8,
            ..BatcherConfig::default()
        },
        // Stretch the run so the scraper gets several windows at it.
        worker_delay: Some(Duration::from_millis(2)),
        ..ServerConfig::default()
    });
    let addr = server.local_addr().to_string();
    let report = loadgen::run(
        &addr,
        &fixture().reads,
        &LoadgenConfig {
            connections: 2,
            mode: ArrivalMode::Closed { window: 8 },
            scrape_every: Some(Duration::from_millis(5)),
            ..LoadgenConfig::default()
        },
    )
    .expect("loadgen");
    server.shutdown();
    assert!(report.is_lossless());
    assert_eq!(report.scrape_failures, 0, "every scrape validated");
    assert!(
        report.stats_snapshots.len() >= 2,
        "want ≥2 mid-run snapshots, got {}",
        report.stats_snapshots.len()
    );
    for snap in &report.stats_snapshots {
        // The scraper validated already; assert here so a future scraper
        // change cannot silently stop checking.
        validate_stats_response(snap).expect("stats response schema");
        assert!(snap.get("slo").is_some(), "snapshot carries the SLO view");
        assert!(
            snap.get("flight").is_some(),
            "snapshot carries the flight summary"
        );
    }
    // The last snapshot must show real traffic, not an idle hub.
    let last = report.stats_snapshots.last().unwrap();
    let admitted = last
        .get("slo")
        .and_then(|s| s.get("admitted"))
        .and_then(JsonValue::as_num)
        .unwrap();
    assert!(admitted > 0.0, "scrapes observed live admissions");
}

#[test]
fn explicit_flight_request_returns_a_valid_dump() {
    use nvwa::telemetry::snapshot::validate_flight_dump;
    let server = start(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    });
    let addr = server.local_addr().to_string();
    let reads: Vec<Vec<u8>> = fixture().reads.iter().take(32).cloned().collect();
    loadgen::run(
        &addr,
        &reads,
        &LoadgenConfig {
            connections: 1,
            mode: ArrivalMode::Closed { window: 8 },
            ..LoadgenConfig::default()
        },
    )
    .expect("loadgen");
    let dump = loadgen::fetch_flight(&addr).expect("flight request");
    server.shutdown();
    validate_flight_dump(&dump).expect("flight dump schema");
    assert_eq!(
        dump.get("reason").and_then(JsonValue::as_str),
        Some("explicit")
    );
    let admits = dump
        .get("digest")
        .and_then(|d| d.get("admit"))
        .and_then(JsonValue::as_num)
        .unwrap();
    assert_eq!(admits, 32.0, "ring retained every admission event");
}

#[test]
fn worker_panic_flight_digest_is_identical_at_1_2_8_workers() {
    let summary = nvwa::testkit::faults::worker_panic_digest_matrix(7).expect("digest matrix");
    assert!(summary.contains("admit=120"), "{summary}");
    assert!(summary.contains("panic_batches=[1]"), "{summary}");
}
