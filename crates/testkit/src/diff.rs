//! Differential oracles: every layer of the stack is compared against an
//! independently-written reference implementation on seeded inputs, and
//! the first divergence is minimized ([`crate::minimize`]) and written as
//! a reproducer file ([`crate::golden::write_repro`]).
//!
//! Five families:
//!
//! * **sw** — `sw::naive` (textbook full-matrix Gotoh) vs the optimized
//!   kernels (full-struct equality on all three entry points, scratch
//!   reused across cases) and banded vs full extension (score equality
//!   when the mutation drift is inside the band; banded ≤ full always).
//! * **extension** — the bit-parallel banded edit kernel
//!   (`myers::banded_edit_*`, `kernel::bitparallel_extend`) vs an
//!   independent full-matrix edit DP and `sw::naive::extend_align`: the
//!   band-exactness contract is checked *both ways* at the band, one past
//!   it and at full coverage, edit scripts are replayed symbol-by-symbol,
//!   and the extension mode is pinned against a prefix-scan oracle
//!   (including the shortest-prefix tie rule). Cases include multi-word
//!   (≥ 65-symbol) patterns and indels of exactly [`EXT_BAND`].
//! * **smem** — the frozen `smem::oracle` vs the hot path in every mode
//!   pair: LUT on/off, trace on/off, scratch reused across queries.
//! * **pipeline** — the traced path, the LUT fast path and a fresh-scratch
//!   run of the full aligner must produce identical alignments and
//!   workload profiles for the same read.
//! * **serve** — responses served over real sockets vs the offline
//!   aligner on the same reads (position, strand, score, CIGAR, MAPQ).
//!
//! Every function is deterministic for a fixed seed: inputs come from
//! [`Prng`] streams salted per family, and summaries contain no
//! wall-clock or thread-dependent values.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use nvwa_align::banded::banded_extend_with;
use nvwa_align::cigar::CigarOp;
use nvwa_align::kernel::bitparallel_extend;
use nvwa_align::myers::{
    banded_edit_extend, banded_edit_global, edit_distance, BandedEdit, MyersScratch,
};
use nvwa_align::pipeline::{
    AlignScratch, AlignerConfig, Alignment, ReferenceIndex, SoftwareAligner,
};
use nvwa_align::scoring::Scoring;
use nvwa_align::sw::{self, DpScratch};
use nvwa_genome::ReferenceGenome;
use nvwa_index::fmd_index::{FmdIndex, PrefixLut};
use nvwa_index::smem::{collect_smems_into, oracle, Smem, SmemConfig, SmemScratch};
use nvwa_index::{NullTrace, VecTrace};
use nvwa_serve::loadgen::{self, ref_params, ArrivalMode, LoadgenConfig};
use nvwa_serve::protocol::WireAlignment;
use nvwa_serve::{Server, ServerConfig};
use nvwa_telemetry::JsonValue;

use crate::minimize::{minimize_set, shrink_read};
use crate::{codes_to_dna, golden, Prng};

/// Band used by the banded-vs-full equality check; [`Prng::mutate`] keeps
/// indel drift strictly inside it.
pub const SW_BAND: usize = 16;

/// A confirmed cross-implementation divergence, minimized.
#[derive(Debug)]
pub struct Divergence {
    /// Which oracle pair disagreed (e.g. `"sw.banded_vs_full"`).
    pub check: String,
    /// First divergence, human-readable (both sides excerpted).
    pub detail: String,
    /// The minimized failing input, as DNA strings.
    pub reads: Vec<String>,
    /// Reproducer file, when a repro directory was given and writable.
    pub repro: Option<PathBuf>,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} (minimized to {} read(s)",
            self.check,
            self.detail,
            self.reads.len()
        )?;
        match &self.repro {
            Some(p) => write!(f, ", repro: {})", p.display()),
            None => write!(f, ")"),
        }
    }
}

impl Divergence {
    /// Builds the divergence, writing the reproducer when `repro_dir` is
    /// set. The reproducer records everything needed to replay: family,
    /// check, seed, and the minimized reads as DNA.
    fn new(
        family: &str,
        check: &str,
        detail: String,
        seed: u64,
        reads: Vec<String>,
        repro_dir: Option<&Path>,
    ) -> Divergence {
        let repro = repro_dir.and_then(|dir| {
            let doc = JsonValue::obj(vec![
                ("kind", JsonValue::Str("nvwa-conformance-repro".to_string())),
                ("family", JsonValue::Str(family.to_string())),
                ("check", JsonValue::Str(check.to_string())),
                ("seed", JsonValue::Num(seed as f64)),
                ("detail", JsonValue::Str(detail.clone())),
                (
                    "reads",
                    JsonValue::Arr(reads.iter().map(|r| JsonValue::Str(r.clone())).collect()),
                ),
            ]);
            golden::write_repro(
                dir,
                &format!("{family}_seed{seed}"),
                &doc.to_string_pretty(),
            )
            .ok()
        });
        Divergence {
            check: check.to_string(),
            detail,
            reads,
            repro,
        }
    }
}

// ---------------------------------------------------------------------------
// sw family
// ---------------------------------------------------------------------------

/// One SW differential case: a (query, target) pair. `related` marks pairs
/// where the query is a bounded mutation of the target, which is the
/// precondition for banded == full equality.
#[derive(Debug, Clone)]
pub struct SwCase {
    /// Query codes.
    pub query: Vec<u8>,
    /// Target codes.
    pub target: Vec<u8>,
    /// Query derived from target with drift ≤ [`SW_BAND`].
    pub related: bool,
}

/// A band-boundary case: one contiguous indel of exactly [`SW_BAND`]
/// codes mid-target, long exact flanks on both sides. The optimal path
/// runs along the `|i − j| == SW_BAND` diagonal, which the band covers
/// *inclusively* — any off-by-one in the band bounds loses the path and
/// breaks banded == full equality (this is what makes the family
/// mutation-tight; a drift strictly inside the band survives a one-cell
/// narrowing).
fn band_boundary_case(p: &mut Prng) -> SwCase {
    let tlen = 80 + p.below(60) as usize;
    let target = p.codes(tlen);
    let cut = tlen / 2;
    let query = if p.below(2) == 0 {
        // Deletion in the query: the path drifts to j − i == SW_BAND.
        let mut q = target[..cut].to_vec();
        q.extend_from_slice(&target[cut + SW_BAND..]);
        q
    } else {
        // Insertion in the query: the path drifts to i − j == SW_BAND.
        let mut q = target[..cut].to_vec();
        for _ in 0..SW_BAND {
            q.push(p.base());
        }
        q.extend_from_slice(&target[cut..]);
        q
    };
    SwCase {
        query,
        target,
        related: true,
    }
}

/// The seeded SW case list: random unrelated pairs (banded ≤ full only),
/// bounded mutations (banded equality applies) and band-boundary indels
/// (banded equality at exactly [`SW_BAND`] of drift).
pub fn sw_cases(seed: u64, n: usize) -> Vec<SwCase> {
    let mut p = Prng(seed ^ 0x5157_0001);
    (0..n)
        .map(|i| {
            if i % 6 == 5 {
                return band_boundary_case(&mut p);
            }
            let tlen = 20 + p.below(140) as usize;
            let target = p.codes(tlen);
            if i % 3 == 0 {
                let qlen = 10 + p.below(70) as usize;
                SwCase {
                    query: p.codes(qlen),
                    target,
                    related: false,
                }
            } else {
                SwCase {
                    query: p.mutate(&target),
                    target,
                    related: true,
                }
            }
        })
        .collect()
}

/// Runs every SW oracle pair on one case. Returns the first divergence as
/// `(check, detail)`, or `None` when all agree.
pub fn sw_divergence(case: &SwCase, dp: &mut DpScratch) -> Option<(&'static str, String)> {
    let q = &case.query;
    let t = &case.target;
    for scoring in [Scoring::bwa_mem(), Scoring::new(2, 3, 4, 1)] {
        let local = sw::local_align_with(q, t, &scoring, dp);
        let local_ref = sw::naive::local_align(q, t, &scoring);
        if local != local_ref {
            return Some((
                "sw.local_vs_naive",
                format!(
                    "score {} vs naive {} (spans q[{}..{}) t[{}..{}))",
                    local.score,
                    local_ref.score,
                    local.query_start,
                    local.query_end,
                    local.target_start,
                    local.target_end
                ),
            ));
        }
        let extend = sw::extend_align_with(q, t, &scoring, dp);
        let extend_ref = sw::naive::extend_align(q, t, &scoring);
        if extend != extend_ref {
            return Some((
                "sw.extend_vs_naive",
                format!("score {} vs naive {}", extend.score, extend_ref.score),
            ));
        }
        let global = sw::global_align_with(q, t, &scoring, dp);
        let global_ref = sw::naive::global_align(q, t, &scoring);
        if global != global_ref {
            return Some((
                "sw.global_vs_naive",
                format!("score {} vs naive {}", global.score, global_ref.score),
            ));
        }
        let banded = banded_extend_with(q, t, &scoring, SW_BAND, dp);
        if banded.cigar.score(&scoring) != banded.score {
            return Some((
                "sw.banded_cigar_consistency",
                format!(
                    "banded score {} but its cigar scores {}",
                    banded.score,
                    banded.cigar.score(&scoring)
                ),
            ));
        }
        if banded.score > extend.score {
            return Some((
                "sw.banded_exceeds_full",
                format!("banded {} > full {}", banded.score, extend.score),
            ));
        }
        if case.related && banded.score != extend.score {
            return Some((
                "sw.banded_vs_full",
                format!(
                    "banded {} != full {} with drift inside band {SW_BAND}",
                    banded.score, extend.score
                ),
            ));
        }
    }
    None
}

/// The sw family: all cases through [`sw_divergence`]; on failure, ddmin
/// over the case set, then shrink query and target of every survivor.
pub fn run_sw_family(
    seed: u64,
    cases: usize,
    repro_dir: Option<&Path>,
) -> Result<String, Divergence> {
    let all = sw_cases(seed, cases);
    let mut dp = DpScratch::new();
    if !all.iter().any(|c| sw_divergence(c, &mut dp).is_some()) {
        return Ok(format!(
            "sw: {cases} cases × 2 scorings × (3 kernels vs naive + banded), all agree"
        ));
    }
    let mut fails = |cs: &[SwCase]| {
        let mut dp = DpScratch::new();
        cs.iter().any(|c| sw_divergence(c, &mut dp).is_some())
    };
    let minimal = minimize_set(&all, &mut fails);
    // Shrink the (single, after ddmin) surviving pair while it keeps
    // diverging; query first, then target.
    let shrunk: Vec<SwCase> = minimal
        .iter()
        .map(|c| {
            let mut c = c.clone();
            c.query = shrink_read(&c.query, &mut |q| {
                let probe = SwCase {
                    query: q.to_vec(),
                    ..c.clone()
                };
                sw_divergence(&probe, &mut DpScratch::new()).is_some()
            });
            c.target = shrink_read(&c.target, &mut |t| {
                let probe = SwCase {
                    target: t.to_vec(),
                    ..c.clone()
                };
                sw_divergence(&probe, &mut DpScratch::new()).is_some()
            });
            c
        })
        .collect();
    let (check, detail) = shrunk
        .iter()
        .find_map(|c| sw_divergence(c, &mut DpScratch::new()))
        .unwrap_or((
            "sw.unstable",
            "divergence vanished during shrinking".to_string(),
        ));
    let reads: Vec<String> = shrunk
        .iter()
        .flat_map(|c| [codes_to_dna(&c.query), codes_to_dna(&c.target)])
        .collect();
    Err(Divergence::new("sw", check, detail, seed, reads, repro_dir))
}

// ---------------------------------------------------------------------------
// extension family (bit-parallel banded edit kernel)
// ---------------------------------------------------------------------------

/// Band used by the extension-kernel differential. Unlike [`SW_BAND`], the
/// checks here do **not** rely on inputs staying inside it: the
/// band-exactness contract (`exact ⇔ true distance ≤ band`) is verified
/// both ways on every pair, so unrelated pairs are as load-bearing as
/// bounded mutations.
pub const EXT_BAND: usize = 16;

/// One extension-kernel differential case. `identity` marks pairs where
/// the query is an exact prefix of the target — there the affine-rescored
/// edit script must reach the full Smith-Waterman extension score exactly.
#[derive(Debug, Clone)]
pub struct ExtensionCase {
    /// Pattern codes (the flank being extended).
    pub query: Vec<u8>,
    /// Text codes.
    pub target: Vec<u8>,
    /// Query is a verbatim prefix of target.
    pub identity: bool,
}

/// A band-boundary case for the edit kernel: exact flanks around one
/// contiguous indel of exactly [`EXT_BAND`] codes, with multi-word
/// (≥ 65-symbol) patterns. The edit distance is (almost always) exactly
/// the band, so the contract check at `EXT_BAND` demands `exact` while the
/// check at `EXT_BAND − 1` demands `!exact` — any off-by-one in the block
/// window bounds breaks one of the two.
fn extension_boundary_case(p: &mut Prng) -> ExtensionCase {
    let tlen = 120 + p.below(80) as usize;
    let target = p.codes(tlen);
    let cut = tlen / 2;
    let query = if p.below(2) == 0 {
        // Deletion in the query: the optimal path drifts to j − i == band.
        let mut q = target[..cut].to_vec();
        q.extend_from_slice(&target[cut + EXT_BAND..]);
        q
    } else {
        // Insertion in the query: the path drifts to i − j == band.
        let mut q = target[..cut].to_vec();
        for _ in 0..EXT_BAND {
            q.push(p.base());
        }
        q.extend_from_slice(&target[cut..]);
        q
    };
    ExtensionCase {
        query,
        target,
        identity: false,
    }
}

/// The seeded extension case list: unrelated pairs (the `!exact` side of
/// the contract), bounded mutations (the `exact` side), identity prefixes
/// (affine-score equality) and band-boundary indels. Lengths range past
/// 64 so the multi-word block carries are exercised throughout.
pub fn extension_cases(seed: u64, n: usize) -> Vec<ExtensionCase> {
    let mut p = Prng(seed ^ 0xE47E_0005);
    (0..n)
        .map(|i| {
            if i % 6 == 5 {
                return extension_boundary_case(&mut p);
            }
            if i % 6 == 2 {
                let tlen = 80 + p.below(120) as usize;
                let target = p.codes(tlen);
                let qlen = tlen - 1 - p.below(12) as usize;
                return ExtensionCase {
                    query: target[..qlen].to_vec(),
                    target,
                    identity: true,
                };
            }
            let tlen = 20 + p.below(180) as usize;
            let target = p.codes(tlen);
            if i % 3 == 0 {
                let qlen = 10 + p.below(170) as usize;
                ExtensionCase {
                    query: p.codes(qlen),
                    target,
                    identity: false,
                }
            } else {
                ExtensionCase {
                    query: p.mutate(&target),
                    target,
                    identity: false,
                }
            }
        })
        .collect()
}

/// Independent edit-DP oracle: the last row of the full unit-cost matrix,
/// i.e. `D[m][j]` = edit distance of the whole pattern vs `text[..j]` for
/// every `j`. One `O(mn)` pass yields both the global distance
/// (`row[n]`) and the prefix-scan extension oracle (`min(row)`).
fn edit_prefix_distances(pattern: &[u8], text: &[u8]) -> Vec<u32> {
    let n = text.len();
    let mut prev: Vec<u32> = (0..=n as u32).collect();
    let mut cur = vec![0u32; n + 1];
    for (i, &pc) in pattern.iter().enumerate() {
        cur[0] = i as u32 + 1;
        for (j, &tc) in text.iter().enumerate() {
            let sub = prev[j] + u32::from(pc != tc);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev
}

/// Replays an edit script symbol-by-symbol against the pair it claims to
/// align: consumption lengths, unit cost vs the reported distance, and
/// per-op base equality (Match) / inequality (Subst). Returns the first
/// violation.
fn script_error(pattern: &[u8], text_prefix: &[u8], r: &BandedEdit) -> Option<String> {
    let c = &r.cigar;
    if c.query_len() != pattern.len() || c.target_len() != text_prefix.len() {
        return Some(format!(
            "script consumes q {} t {} of q {} t {}",
            c.query_len(),
            c.target_len(),
            pattern.len(),
            text_prefix.len()
        ));
    }
    if c.edit_distance() != r.distance as usize {
        return Some(format!(
            "script costs {} but reported distance is {}",
            c.edit_distance(),
            r.distance
        ));
    }
    let (mut i, mut j) = (0usize, 0usize);
    for &(op, len) in c.runs() {
        for _ in 0..len {
            let ok = match op {
                CigarOp::Match => pattern[i] == text_prefix[j],
                CigarOp::Subst => pattern[i] != text_prefix[j],
                CigarOp::Ins | CigarOp::Del => true,
            };
            if !ok {
                return Some(format!(
                    "op {op:?} at q[{i}] t[{j}] contradicts the symbols"
                ));
            }
            match op {
                CigarOp::Match | CigarOp::Subst => {
                    i += 1;
                    j += 1;
                }
                CigarOp::Ins => i += 1,
                CigarOp::Del => j += 1,
            }
        }
    }
    None
}

/// Runs every extension-kernel oracle on one case. Returns the first
/// divergence as `(check, detail)`, or `None` when all agree.
pub fn extension_divergence(
    case: &ExtensionCase,
    myers: &mut MyersScratch,
    dp: &mut DpScratch,
) -> Option<(&'static str, String)> {
    let q = &case.query;
    let t = &case.target;
    let row = edit_prefix_distances(q, t);
    let full = row[t.len()];
    // The lifted multi-word `edit_distance` entry point vs the DP oracle.
    if !q.is_empty() && edit_distance(q, t) != full {
        return Some((
            "extension.edit_distance_vs_naive",
            format!("bit-parallel {} vs DP {}", edit_distance(q, t), full),
        ));
    }
    // The banded global kernel at the band, one cell past it, and full
    // coverage: the exactness contract must hold both ways at all three.
    for band in [EXT_BAND, EXT_BAND - 1, q.len() + t.len()] {
        let g = banded_edit_global(q, t, band, myers);
        let within = full as usize <= band.max(1);
        if g.exact != within {
            return Some((
                "extension.exactness_contract",
                format!(
                    "band {band}: exact={} but true distance {full} (want exact={within})",
                    g.exact
                ),
            ));
        }
        if g.exact {
            if g.distance != full {
                return Some((
                    "extension.banded_vs_naive",
                    format!("band {band}: exact distance {} vs DP {full}", g.distance),
                ));
            }
            if let Some(err) = script_error(q, t, &g) {
                return Some(("extension.global_script", format!("band {band}: {err}")));
            }
        } else {
            if g.distance < full {
                return Some((
                    "extension.underestimate",
                    format!("band {band}: inexact {} < true {full}", g.distance),
                ));
            }
            if !g.cigar.is_empty() {
                return Some((
                    "extension.inexact_cigar",
                    format!("band {band}: inexact result carries a {} script", g.cigar),
                ));
            }
        }
    }
    // The extension mode vs the prefix-scan oracle, including the
    // shortest-prefix tie rule.
    let best = *row.iter().min().expect("row is never empty");
    let best_j = row.iter().position(|&d| d == best).expect("min exists");
    let e = banded_edit_extend(q, t, EXT_BAND, myers);
    if e.exact != (best as usize <= EXT_BAND) {
        return Some((
            "extension.extend_contract",
            format!(
                "exact={} but best prefix distance is {best} vs band {EXT_BAND}",
                e.exact
            ),
        ));
    }
    if e.exact {
        if (e.distance, e.target_end) != (best, best_j) {
            return Some((
                "extension.extend_vs_prefix_scan",
                format!(
                    "({}, end {}) vs oracle ({best}, end {best_j})",
                    e.distance, e.target_end
                ),
            ));
        }
        if let Some(err) = script_error(q, &t[..e.target_end], &e) {
            return Some(("extension.extend_script", err));
        }
    } else if e.distance < best {
        return Some((
            "extension.extend_underestimate",
            format!("inexact {} < best prefix distance {best}", e.distance),
        ));
    }
    // The pipeline-facing kernel vs the affine optimum: an edit-optimal
    // script rescored under affine costs can reach but never beat
    // `sw::naive::extend_align`, must stay self-consistent, and must hit
    // the optimum exactly on identity prefixes.
    let scoring = Scoring::bwa_mem();
    let bp = bitparallel_extend(q, t, &scoring, EXT_BAND, myers, dp);
    let full_sw = sw::naive::extend_align(q, t, &scoring);
    if bp.score > full_sw.score {
        return Some((
            "extension.kernel_exceeds_affine_optimum",
            format!("kernel {} > naive extend {}", bp.score, full_sw.score),
        ));
    }
    if bp.cigar.score(&scoring) != bp.score
        || bp.cigar.query_len() != bp.query_len
        || bp.cigar.target_len() != bp.target_len
    {
        return Some((
            "extension.kernel_consistency",
            format!(
                "score {} cigar-score {} q {}/{} t {}/{}",
                bp.score,
                bp.cigar.score(&scoring),
                bp.query_len,
                bp.cigar.query_len(),
                bp.target_len,
                bp.cigar.target_len()
            ),
        ));
    }
    if case.identity && bp.score != full_sw.score {
        return Some((
            "extension.kernel_vs_full_on_identity",
            format!(
                "kernel {} vs naive extend {} on an exact prefix",
                bp.score, full_sw.score
            ),
        ));
    }
    None
}

/// The extension family: all cases through [`extension_divergence`]; on
/// failure, ddmin over the case set, then shrink query and target of every
/// survivor (fresh scratches inside the predicates — shrinking must not
/// depend on scratch state).
pub fn run_extension_family(
    seed: u64,
    cases: usize,
    repro_dir: Option<&Path>,
) -> Result<String, Divergence> {
    let all = extension_cases(seed, cases);
    let mut myers = MyersScratch::new();
    let mut dp = DpScratch::new();
    if !all
        .iter()
        .any(|c| extension_divergence(c, &mut myers, &mut dp).is_some())
    {
        return Ok(format!(
            "extension: {cases} cases × 3 bands × (edit-distance, global, extend, kernel) vs DP oracles, all agree"
        ));
    }
    let mut fails = |cs: &[ExtensionCase]| {
        let (mut myers, mut dp) = (MyersScratch::new(), DpScratch::new());
        cs.iter()
            .any(|c| extension_divergence(c, &mut myers, &mut dp).is_some())
    };
    let minimal = minimize_set(&all, &mut fails);
    let shrunk: Vec<ExtensionCase> = minimal
        .iter()
        .map(|c| {
            let mut c = c.clone();
            c.query = shrink_read(&c.query, &mut |q| {
                let probe = ExtensionCase {
                    query: q.to_vec(),
                    ..c.clone()
                };
                extension_divergence(&probe, &mut MyersScratch::new(), &mut DpScratch::new())
                    .is_some()
            });
            c.target = shrink_read(&c.target, &mut |t| {
                let probe = ExtensionCase {
                    target: t.to_vec(),
                    ..c.clone()
                };
                extension_divergence(&probe, &mut MyersScratch::new(), &mut DpScratch::new())
                    .is_some()
            });
            c
        })
        .collect();
    let (check, detail) = shrunk
        .iter()
        .find_map(|c| extension_divergence(c, &mut MyersScratch::new(), &mut DpScratch::new()))
        .unwrap_or((
            "extension.unstable",
            "divergence vanished during shrinking".to_string(),
        ));
    let reads: Vec<String> = shrunk
        .iter()
        .flat_map(|c| [codes_to_dna(&c.query), codes_to_dna(&c.target)])
        .collect();
    Err(Divergence::new(
        "extension",
        check,
        detail,
        seed,
        reads,
        repro_dir,
    ))
}

// ---------------------------------------------------------------------------
// smem family
// ---------------------------------------------------------------------------

/// Describes the first differing SMEM between two result lists.
fn smem_diff_detail(want: &[Smem], got: &[Smem]) -> String {
    let i = want
        .iter()
        .zip(got.iter())
        .position(|(a, b)| a != b)
        .unwrap_or(want.len().min(got.len()));
    let fmt = |s: Option<&Smem>| match s {
        Some(s) => format!("q[{}..{}) occ {}", s.query_start, s.query_end, s.occ()),
        None => "<absent>".to_string(),
    };
    format!(
        "{} vs {} SMEMs; first difference at index {i}: oracle {} vs fast {}",
        want.len(),
        got.len(),
        fmt(want.get(i)),
        fmt(got.get(i))
    )
}

/// Compares `smem::oracle` against the hot path in all three mode pairs
/// (plain index untraced, LUT index untraced = LUT engaged, LUT index
/// traced = LUT bypassed) with per-index scratch reuse. Returns the
/// first divergence.
pub fn smem_divergence(
    fmd_plain: &FmdIndex,
    fmd_lut: &FmdIndex,
    config: &SmemConfig,
    query: &[u8],
    s_plain: &mut SmemScratch,
    s_lut: &mut SmemScratch,
) -> Option<(&'static str, String)> {
    let want = oracle::collect_smems(fmd_plain, query, config);
    let mut got = Vec::new();
    collect_smems_into(fmd_plain, query, config, s_plain, &mut got, &mut NullTrace);
    if got != want {
        return Some(("smem.fast_vs_oracle", smem_diff_detail(&want, &got)));
    }
    collect_smems_into(fmd_lut, query, config, s_lut, &mut got, &mut NullTrace);
    if got != want {
        return Some(("smem.lut_vs_oracle", smem_diff_detail(&want, &got)));
    }
    let mut trace = VecTrace::default();
    collect_smems_into(fmd_lut, query, config, s_lut, &mut got, &mut trace);
    if got != want {
        return Some(("smem.traced_vs_oracle", smem_diff_detail(&want, &got)));
    }
    None
}

/// A lenient config exercising the re-seeding pass on short queries.
fn smem_reseed_config() -> SmemConfig {
    SmemConfig {
        min_seed_len: 9,
        min_intv: 1,
        split_len: 14,
        split_width: 10,
    }
}

/// The smem family: a seeded reference, two index builds (with/without
/// LUT), mutated windows + random queries under the default and the
/// re-seeding-heavy config.
pub fn run_smem_family(
    seed: u64,
    cases: usize,
    repro_dir: Option<&Path>,
) -> Result<String, Divergence> {
    let mut p = Prng(seed ^ 0x53ED_0002);
    let reference = p.codes(3000);
    let fmd_plain = FmdIndex::from_forward(&reference);
    let mut fmd_lut = FmdIndex::from_forward(&reference);
    fmd_lut.build_prefix_lut(PrefixLut::DEFAULT_K);
    let queries: Vec<Vec<u8>> = (0..cases)
        .map(|i| {
            if i % 4 == 3 {
                let len = 30 + p.below(120) as usize;
                p.codes(len)
            } else {
                let start = p.below((reference.len() - 101) as u64) as usize;
                p.mutate(&reference[start..start + 101])
            }
        })
        .collect();
    let configs = [SmemConfig::default(), smem_reseed_config()];
    let mut s_plain = SmemScratch::new();
    let mut s_lut = SmemScratch::new();
    for config in &configs {
        for query in &queries {
            if let Some((check, _)) = smem_divergence(
                &fmd_plain,
                &fmd_lut,
                config,
                query,
                &mut s_plain,
                &mut s_lut,
            ) {
                // Shrink the query while the divergence holds (fresh
                // scratches inside the predicate: the shrink must not
                // depend on cache state).
                let minimal = shrink_read(query, &mut |q| {
                    smem_divergence(
                        &fmd_plain,
                        &fmd_lut,
                        config,
                        q,
                        &mut SmemScratch::new(),
                        &mut SmemScratch::new(),
                    )
                    .is_some()
                });
                let (check, detail) = smem_divergence(
                    &fmd_plain,
                    &fmd_lut,
                    config,
                    &minimal,
                    &mut SmemScratch::new(),
                    &mut SmemScratch::new(),
                )
                .unwrap_or((check, "divergence vanished during shrinking".to_string()));
                let detail = format!(
                    "{detail} (reference: 3000 codes from seed {seed}, min_seed_len {})",
                    config.min_seed_len
                );
                return Err(Divergence::new(
                    "smem",
                    check,
                    detail,
                    seed,
                    vec![codes_to_dna(&minimal)],
                    repro_dir,
                ));
            }
        }
    }
    Ok(format!(
        "smem: {cases} queries × 2 configs × 3 mode pairs vs oracle, all agree"
    ))
}

// ---------------------------------------------------------------------------
// pipeline family
// ---------------------------------------------------------------------------

/// Compares the three pipeline paths on one read: traced (LUT bypassed),
/// fast (LUT engaged) and a fresh-scratch run. Alignments must be
/// identical and the workload profiles must agree on every trace-invariant
/// counter.
pub fn pipeline_divergence(
    aligner: &SoftwareAligner<'_>,
    read_id: u64,
    codes: &[u8],
    scratch: &mut AlignScratch,
) -> Option<(&'static str, String)> {
    let traced = aligner.align_codes_with(read_id, codes, scratch);
    let fast = aligner.align_codes_fast(read_id, codes, scratch);
    let fresh = aligner.align_codes(read_id, codes);
    let describe = |o: &Option<Alignment>| match o {
        Some(a) => format!(
            "pos {} rc {} score {} cigar {} mapq {}",
            a.flat_pos, a.is_rc, a.score, a.cigar, a.mapq
        ),
        None => "unmapped".to_string(),
    };
    if traced.alignment != fast.alignment {
        return Some((
            "pipeline.traced_vs_fast",
            format!(
                "traced [{}] vs fast [{}]",
                describe(&traced.alignment),
                describe(&fast.alignment)
            ),
        ));
    }
    if fast.alignment != fresh.alignment {
        return Some((
            "pipeline.scratch_vs_fresh",
            format!(
                "reused scratch [{}] vs fresh [{}]",
                describe(&fast.alignment),
                describe(&fresh.alignment)
            ),
        ));
    }
    let profile_key = |o: &nvwa_align::pipeline::AlignmentOutcome| {
        (
            o.profile.smem_count,
            o.profile.located_hits,
            o.profile.hit_tasks.len(),
            o.profile.dp_cells,
        )
    };
    if profile_key(&traced) != profile_key(&fast) {
        return Some((
            "pipeline.profile_drift",
            format!(
                "traced profile {:?} vs fast {:?} (smems, hits, tasks, dp_cells)",
                profile_key(&traced),
                profile_key(&fast)
            ),
        ));
    }
    None
}

/// The pipeline family: seeded reference, mutated-window + random reads,
/// all three paths per read.
pub fn run_pipeline_family(
    seed: u64,
    reads: usize,
    repro_dir: Option<&Path>,
) -> Result<String, Divergence> {
    let mut p = Prng(seed ^ 0x21BE_0003);
    let reference = p.codes(8000);
    let index = ReferenceIndex::from_codes(reference.clone(), 32);
    let aligner = SoftwareAligner::new(&index, AlignerConfig::default());
    let read_list: Vec<Vec<u8>> = (0..reads)
        .map(|i| {
            if i % 5 == 4 {
                let len = 60 + p.below(90) as usize;
                p.codes(len)
            } else {
                let start = p.below((reference.len() - 101) as u64) as usize;
                p.mutate(&reference[start..start + 101])
            }
        })
        .collect();
    let mut scratch = AlignScratch::new();
    for (i, codes) in read_list.iter().enumerate() {
        if pipeline_divergence(&aligner, i as u64, codes, &mut scratch).is_some() {
            let minimal = shrink_read(codes, &mut |r| {
                pipeline_divergence(&aligner, i as u64, r, &mut AlignScratch::new()).is_some()
            });
            let (check, detail) =
                pipeline_divergence(&aligner, i as u64, &minimal, &mut AlignScratch::new())
                    .unwrap_or((
                        "pipeline.unstable",
                        "divergence vanished during shrinking".to_string(),
                    ));
            let detail = format!("{detail} (reference: 8000 codes from seed {seed})");
            return Err(Divergence::new(
                "pipeline",
                check,
                detail,
                seed,
                vec![codes_to_dna(&minimal)],
                repro_dir,
            ));
        }
    }
    Ok(format!(
        "pipeline: {reads} reads × 3 paths (traced, LUT fast, fresh scratch), all agree"
    ))
}

// ---------------------------------------------------------------------------
// serve family
// ---------------------------------------------------------------------------

/// Reference length of the serve differential (small enough that index
/// construction stays cheap in CI, large enough for real SMEM structure).
pub const SERVE_REF_LEN: usize = 20_000;

pub(crate) fn wire_matches(wire: &Option<WireAlignment>, offline: &Option<Alignment>) -> bool {
    match (wire, offline) {
        (None, None) => true,
        (Some(w), Some(a)) => {
            w.pos == a.flat_pos
                && w.is_rc == a.is_rc
                && w.score == a.score
                && w.cigar == a.cigar.to_string()
                && w.mapq == a.mapq
        }
        _ => false,
    }
}

/// One serve round trip: start a server on the shared index, run the
/// closed-loop loadgen over `reads`, shut down, and return the first read
/// whose served alignment differs from the offline aligner's (or an
/// error string for transport-level failures, which are *not*
/// divergences).
fn serve_round(
    index: &Arc<ReferenceIndex>,
    reads: &[Vec<u8>],
) -> Result<Option<(u64, String)>, String> {
    let server = Server::start(
        Arc::clone(index),
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .map_err(|e| format!("server start: {e}"))?;
    let addr = server.local_addr().to_string();
    let report = loadgen::run(
        &addr,
        reads,
        &LoadgenConfig {
            connections: 2,
            mode: ArrivalMode::Closed { window: 16 },
            collect_responses: true,
            ..LoadgenConfig::default()
        },
    )
    .map_err(|e| format!("loadgen: {e}"))?;
    server.shutdown();
    if !report.is_lossless() || report.ok != reads.len() as u64 {
        return Err(format!(
            "transport not clean: sent {} ok {} lost {} duplicates {}",
            report.sent, report.ok, report.lost, report.duplicates
        ));
    }
    let aligner = SoftwareAligner::new(index, AlignerConfig::default());
    let mut scratch = AlignScratch::new();
    // Walk ids in order so "first divergent read" is deterministic.
    for id in 0..reads.len() as u64 {
        let resp = report
            .responses
            .get(&id)
            .ok_or_else(|| format!("response for read {id} missing despite ok count"))?;
        let offline = aligner
            .align_codes_fast(id, &reads[id as usize], &mut scratch)
            .alignment;
        if !wire_matches(&resp.alignment, &offline) {
            let served = match &resp.alignment {
                Some(w) => format!(
                    "pos {} rc {} score {} cigar {} mapq {}",
                    w.pos, w.is_rc, w.score, w.cigar, w.mapq
                ),
                None => "unmapped".to_string(),
            };
            let want = match &offline {
                Some(a) => format!(
                    "pos {} rc {} score {} cigar {} mapq {}",
                    a.flat_pos, a.is_rc, a.score, a.cigar, a.mapq
                ),
                None => "unmapped".to_string(),
            };
            return Ok(Some((
                id,
                format!("read {id}: served [{served}] vs offline [{want}]"),
            )));
        }
    }
    Ok(None)
}

/// The serve family: simulated reads against a synthesized reference,
/// served over real sockets and compared read-by-read with the offline
/// aligner. On divergence, ddmin over the read set (each probe is a fresh
/// server round, so batching-dependent divergences minimize too), then
/// shrink the surviving reads.
pub fn run_serve_family(
    seed: u64,
    reads: usize,
    repro_dir: Option<&Path>,
) -> Result<String, Divergence> {
    let params = ref_params(SERVE_REF_LEN);
    let genome = ReferenceGenome::synthesize(&params, seed);
    let index = Arc::new(ReferenceIndex::build(&genome, 32));
    let read_list = loadgen::generate_reads(&params, seed, seed ^ 0x52EA_D004, reads);
    let first = match serve_round(&index, &read_list) {
        Ok(None) => {
            return Ok(format!(
                "serve: {reads} reads served and bit-identical to the offline aligner"
            ))
        }
        Ok(Some(found)) => found,
        Err(e) => {
            // Transport failure, not an alignment divergence: surface it
            // without minimization (the minimizer assumes a clean channel).
            return Err(Divergence::new(
                "serve",
                "serve.transport",
                e,
                seed,
                Vec::new(),
                repro_dir,
            ));
        }
    };
    let mut fails = |subset: &[Vec<u8>]| matches!(serve_round(&index, subset), Ok(Some(_)));
    let minimal_set = minimize_set(&read_list, &mut fails);
    let shrunk: Vec<Vec<u8>> = (0..minimal_set.len())
        .map(|i| {
            let mut set = minimal_set.clone();
            shrink_read(&minimal_set[i], &mut |r| {
                set[i] = r.to_vec();
                matches!(serve_round(&index, &set), Ok(Some(_)))
            })
        })
        .collect();
    let detail = match serve_round(&index, &shrunk) {
        Ok(Some((_, d))) => d,
        _ => first.1,
    };
    Err(Divergence::new(
        "serve",
        "serve.vs_offline",
        detail,
        seed,
        shrunk.iter().map(|r| codes_to_dna(r)).collect(),
        repro_dir,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sw_family_agrees_on_a_healthy_tree() {
        let summary = run_sw_family(7, 40, None).expect("sw oracles agree");
        assert!(summary.contains("40 cases"), "{summary}");
    }

    /// The boundary cases are what make the family mutation-tight: their
    /// optimal path runs along the `|i − j| == SW_BAND` diagonal, so a
    /// band narrowed by one cell must lose score. Without this property a
    /// planted off-by-one in the band bounds would survive conformance.
    #[test]
    fn band_boundary_cases_are_tight_against_off_by_one() {
        let mut p = Prng(31);
        let scoring = Scoring::bwa_mem();
        let mut dp = DpScratch::new();
        let mut narrowed_loses = 0usize;
        for _ in 0..10 {
            let case = band_boundary_case(&mut p);
            let full = sw::extend_align_with(&case.query, &case.target, &scoring, &mut dp);
            let exact = banded_extend_with(&case.query, &case.target, &scoring, SW_BAND, &mut dp);
            assert_eq!(exact.score, full.score, "correct band must cover the path");
            let narrow =
                banded_extend_with(&case.query, &case.target, &scoring, SW_BAND - 1, &mut dp);
            if narrow.score < full.score {
                narrowed_loses += 1;
            }
        }
        assert_eq!(
            narrowed_loses, 10,
            "every boundary case must be lost by a band one cell too narrow"
        );
    }

    #[test]
    fn extension_family_agrees_on_a_healthy_tree() {
        let summary = run_extension_family(7, 36, None).expect("extension oracles agree");
        assert!(summary.contains("36 cases"), "{summary}");
    }

    /// The boundary cases sit exactly on the drift limit: an indel of
    /// [`EXT_BAND`] costs exactly the band (for almost every seed), so
    /// `banded_edit_global` must be exact at `EXT_BAND` and must clamp at
    /// `EXT_BAND − 1` — both directions of the contract at the edge.
    #[test]
    fn extension_boundary_cases_sit_exactly_on_the_band() {
        let mut p = Prng(31);
        let mut myers = MyersScratch::new();
        let mut at_limit = 0usize;
        for _ in 0..10 {
            let case = extension_boundary_case(&mut p);
            let row = edit_prefix_distances(&case.query, &case.target);
            let full = row[case.target.len()] as usize;
            assert!(full <= EXT_BAND, "one indel of EXT_BAND cannot cost more");
            let g = banded_edit_global(&case.query, &case.target, EXT_BAND, &mut myers);
            assert!(g.exact, "band equal to the drift must stay exact");
            assert_eq!(g.distance as usize, full);
            if full == EXT_BAND {
                at_limit += 1;
                let narrow =
                    banded_edit_global(&case.query, &case.target, EXT_BAND - 1, &mut myers);
                assert!(!narrow.exact, "band one short of the indel must clamp");
            }
        }
        assert!(at_limit >= 8, "only {at_limit}/10 cases sat at the limit");
    }

    #[test]
    fn a_planted_band_bug_in_the_edit_kernel_is_caught_and_minimized() {
        // Simulate a kernel whose band is silently one cell too narrow:
        // cases whose true distance is exactly EXT_BAND report `!exact`
        // where the contract demands `exact`. The boundary cases in the
        // seeded list catch it, and ddmin brings the list down to one.
        let cases = extension_cases(3, 30);
        let buggy = |c: &ExtensionCase| {
            let mut myers = MyersScratch::new();
            let row = edit_prefix_distances(&c.query, &c.target);
            let full = row[c.target.len()] as usize;
            let g = banded_edit_global(&c.query, &c.target, EXT_BAND - 1, &mut myers);
            full <= EXT_BAND && !g.exact
        };
        assert!(cases.iter().any(buggy), "a boundary case must trip the bug");
        let minimal = minimize_set(&cases, &mut |cs| cs.iter().any(buggy));
        assert_eq!(minimal.len(), 1, "one pair suffices to reproduce");
    }

    #[test]
    fn smem_family_agrees_on_a_healthy_tree() {
        let summary = run_smem_family(7, 12, None).expect("smem oracles agree");
        assert!(summary.contains("12 queries"), "{summary}");
    }

    #[test]
    fn pipeline_family_agrees_on_a_healthy_tree() {
        let summary = run_pipeline_family(7, 12, None).expect("pipeline paths agree");
        assert!(summary.contains("12 reads"), "{summary}");
    }

    #[test]
    fn a_planted_banded_bug_is_caught_and_minimized() {
        // Simulate an off-by-one in the banded kernel by narrowing the
        // band below the mutation drift: related cases must diverge, and
        // the minimizer must bring the case list down to one pair.
        let cases = sw_cases(3, 30);
        let buggy = |c: &SwCase| {
            let mut dp = DpScratch::new();
            let scoring = Scoring::bwa_mem();
            let full = sw::extend_align_with(&c.query, &c.target, &scoring, &mut dp);
            let banded = banded_extend_with(&c.query, &c.target, &scoring, 1, &mut dp);
            c.related && banded.score != full.score
        };
        assert!(cases.iter().any(buggy), "band 1 must lose some optimum");
        let minimal = minimize_set(&cases, &mut |cs| cs.iter().any(buggy));
        assert_eq!(minimal.len(), 1, "one pair suffices to reproduce");
    }
}
