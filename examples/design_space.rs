//! Design-space exploration (the Fig. 13 studies as a user would run them):
//! sweep the Hits Buffer depth and the EU interval count, and solve
//! Formula 5 for a custom hit-length distribution.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use nvwa::core::config::NvwaConfig;
use nvwa::core::experiments::{fig13, Scale};
use nvwa::core::extension::{solve_classes, NA12878_INTERVAL_MASSES};
use nvwa::core::power::PowerBreakdown;

fn main() {
    // Formula 5 on the NA12878 distribution reproduces Table I.
    let classes = solve_classes(&NA12878_INTERVAL_MASSES, &[16, 32, 64, 128], 2880);
    println!("Formula 5 on the NA12878 masses (budget 2880 PEs):");
    for c in &classes {
        println!("  {:3}-PE units: {}", c.pes, c.count);
    }

    // A custom long-hit-heavy distribution yields a different provisioning.
    let long_heavy = [0.15, 0.20, 0.30, 0.35];
    let custom = solve_classes(&long_heavy, &[16, 32, 64, 128], 2880);
    println!("Formula 5 on a long-hit-heavy distribution:");
    for c in &custom {
        println!("  {:3}-PE units: {}", c.pes, c.count);
    }

    // The full Fig. 13 sweeps.
    println!("\n{}", fig13::run(Scale::Quick));

    // Power sensitivity: how the Coordinator budget moves with the buffer.
    println!("Coordinator power vs buffer depth:");
    for depth in [128usize, 512, 1024, 4096] {
        let breakdown = PowerBreakdown::for_config(&NvwaConfig {
            hits_buffer_depth: depth,
            ..NvwaConfig::paper()
        });
        println!(
            "  depth {depth:5}: coordinator {:.3} W, chip total {:.3} W / {:.3} mm²",
            breakdown.coordinator_power_w(),
            breakdown.total_power_w(),
            breakdown.total_area_mm2()
        );
    }
}
