//! Deterministic event queue with cycle resolution.

use std::collections::{BTreeMap, VecDeque};

use crate::Cycle;

/// A min-queue of timestamped events.
///
/// Events at the same cycle pop in push order, which makes simulations
/// deterministic regardless of payload contents.
///
/// Internally a `BTreeMap` of per-cycle FIFO buckets rather than a binary
/// heap: simulator traffic is dominated by bursts of events landing on the
/// same cycle (a drained FIFO, a batch of completions), and a bucket makes
/// every same-cycle push/pop an O(1) `VecDeque` operation instead of an
/// O(log n) sift — see [`EventQueue::pop_while`], which lets the simulator
/// drain a whole cycle without re-searching the tree per event.
///
/// # Examples
///
/// ```
/// use nvwa_sim::EventQueue;
/// let mut q = EventQueue::new();
/// q.push(10, "b");
/// q.push(5, "a");
/// q.push(10, "c");
/// assert_eq!(q.pop(), Some((5, "a")));
/// assert_eq!(q.pop(), Some((10, "b")));
/// assert_eq!(q.pop(), Some((10, "c")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Default)]
pub struct EventQueue<E> {
    buckets: BTreeMap<Cycle, VecDeque<E>>,
    len: usize,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> EventQueue<E> {
        EventQueue {
            buckets: BTreeMap::new(),
            len: 0,
        }
    }

    /// Schedules `payload` at `cycle`.
    pub fn push(&mut self, cycle: Cycle, payload: E) {
        self.buckets.entry(cycle).or_default().push_back(payload);
        self.len += 1;
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let mut entry = self.buckets.first_entry()?;
        let cycle = *entry.key();
        let bucket = entry.get_mut();
        let payload = bucket.pop_front().expect("bucket never left empty");
        if bucket.is_empty() {
            entry.remove();
        }
        self.len -= 1;
        Some((cycle, payload))
    }

    /// Removes and returns the earliest event **if** it is scheduled at
    /// `cycle`. Repeated calls drain a cycle's bucket in push order in
    /// O(1) amortized per event; events pushed *at* `cycle` during the
    /// drain join the back of the same bucket and are returned too.
    pub fn pop_while(&mut self, cycle: Cycle) -> Option<E> {
        let mut entry = self.buckets.first_entry()?;
        if *entry.key() != cycle {
            return None;
        }
        let bucket = entry.get_mut();
        let payload = bucket.pop_front().expect("bucket never left empty");
        if bucket.is_empty() {
            entry.remove();
        }
        self.len -= 1;
        Some(payload)
    }

    /// The cycle of the earliest event, if any.
    pub fn peek_cycle(&self) -> Option<Cycle> {
        self.buckets.keys().next().copied()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "EventQueue(len={}, next={:?})",
            self.len,
            self.peek_cycle()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_cycle_order() {
        let mut q = EventQueue::new();
        for (c, v) in [(30u64, 3), (10, 1), (20, 2)] {
            q.push(c, v);
        }
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((20, 2)));
        assert_eq!(q.pop(), Some((30, 3)));
    }

    #[test]
    fn ties_break_in_push_order() {
        let mut q = EventQueue::new();
        for v in 0..100 {
            q.push(7, v);
        }
        for v in 0..100 {
            assert_eq!(q.pop(), Some((7, v)));
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(5, ());
        assert_eq!(q.peek_cycle(), Some(5));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        let _ = q.pop();
        assert_eq!(q.peek_cycle(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn payload_needs_no_ordering() {
        // A payload type with no Ord impl compiles and works.
        #[derive(Debug, PartialEq)]
        struct NoOrd(f64);
        let mut q = EventQueue::new();
        q.push(2, NoOrd(2.0));
        q.push(1, NoOrd(1.0));
        assert_eq!(q.pop().unwrap().1, NoOrd(1.0));
    }

    #[test]
    fn pop_while_drains_only_the_given_cycle() {
        let mut q = EventQueue::new();
        q.push(5, "a");
        q.push(5, "b");
        q.push(6, "c");
        assert_eq!(q.pop_while(5), Some("a"));
        assert_eq!(q.pop_while(5), Some("b"));
        assert_eq!(q.pop_while(5), None);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_while(6), Some("c"));
        assert!(q.is_empty());
        assert_eq!(q.pop_while(6), None);
    }

    #[test]
    fn pop_while_sees_events_pushed_mid_drain() {
        let mut q = EventQueue::new();
        q.push(3, 0);
        assert_eq!(q.pop_while(3), Some(0));
        q.push(3, 1); // same-cycle event scheduled while handling event 0
        q.push(4, 2);
        assert_eq!(q.pop_while(3), Some(1));
        assert_eq!(q.pop_while(3), None);
        assert_eq!(q.pop(), Some((4, 2)));
    }

    #[test]
    fn mixed_pop_and_pop_while_agree_with_heap_semantics() {
        // Replay the same pushes through pop() alone and through a
        // pop_while-based drain; the observed (cycle, payload) order must
        // be identical.
        let pushes = [(4u64, 'd'), (2, 'a'), (2, 'b'), (9, 'e'), (2, 'c')];
        let mut reference = EventQueue::new();
        let mut drained = EventQueue::new();
        for &(c, v) in &pushes {
            reference.push(c, v);
            drained.push(c, v);
        }
        let mut by_pop = Vec::new();
        while let Some(ev) = reference.pop() {
            by_pop.push(ev);
        }
        let mut by_drain = Vec::new();
        while let Some((cycle, first)) = drained.pop() {
            by_drain.push((cycle, first));
            while let Some(more) = drained.pop_while(cycle) {
                by_drain.push((cycle, more));
            }
        }
        assert_eq!(by_pop, by_drain);
    }
}
