//! Fig. 7/8 — regenerates the systolic latency curves and times the
//! cycle-exact systolic model against the closed-form Formula 3.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nvwa_align::scoring::Scoring;
use nvwa_core::experiments::fig7;
use nvwa_core::extension::systolic::{matrix_fill_latency, SystolicArray};

fn bench(c: &mut Criterion) {
    println!("{}", fig7::run());
    let query: Vec<u8> = (0..64).map(|i| (i % 4) as u8).collect();
    let target: Vec<u8> = (0..64).map(|i| ((i / 2) % 4) as u8).collect();
    let scoring = Scoring::bwa_mem();
    let mut group = c.benchmark_group("fig8");
    group.sample_size(20);
    for pes in [8u32, 64] {
        group.bench_with_input(BenchmarkId::new("cycle_exact", pes), &pes, |b, &pes| {
            b.iter(|| SystolicArray::new(pes).run(&query, &target, &scoring))
        });
        group.bench_with_input(BenchmarkId::new("formula3", pes), &pes, |b, &pes| {
            b.iter(|| matrix_fill_latency(64, 64, std::hint::black_box(pes)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
