//! Species profiles for the multi-dataset sensitivity study (Fig. 14).
//!
//! The paper simulates reads with DWGSIM against six NCBI reference genomes.
//! Offline we cannot download them, so each species is represented by a
//! synthesis profile — genome scale, GC content and repeat structure — chosen
//! to produce distinct (but, for second-generation reads, *similar-shaped*)
//! hit-length distributions, which is exactly the property Fig. 14(b) relies
//! on.

use crate::reference::{ReferenceGenome, ReferenceParams};

/// One of the six species of Fig. 14.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Species {
    /// *Homo sapiens* (the NA12878 stand-in).
    HomoSapiens,
    /// *Clitarchus hookeri* (stick insect; large, repeat-rich genome).
    ClitarchusHookeri,
    /// *Zapus hudsonius* (meadow jumping mouse).
    ZapusHudsonius,
    /// *Camelus dromedarius* (dromedary).
    CamelusDromedarius,
    /// *Venustaconcha ellipsiformis* (freshwater mussel).
    VenustaconchaEllipsiformis,
    /// *Caenorhabditis elegans* (nematode; small, compact genome).
    CaenorhabditisElegans,
}

/// The Fig. 14 species in the paper's presentation order.
pub const ALL_SPECIES: [Species; 6] = [
    Species::HomoSapiens,
    Species::ClitarchusHookeri,
    Species::ZapusHudsonius,
    Species::CamelusDromedarius,
    Species::VenustaconchaEllipsiformis,
    Species::CaenorhabditisElegans,
];

impl Species {
    /// Short label used in the paper's figure ("H. s.", "C. h.", …).
    pub fn label(self) -> &'static str {
        match self {
            Species::HomoSapiens => "H. s.",
            Species::ClitarchusHookeri => "C. h.",
            Species::ZapusHudsonius => "Z. h.",
            Species::CamelusDromedarius => "C. d.",
            Species::VenustaconchaEllipsiformis => "V. e.",
            Species::CaenorhabditisElegans => "C. e.",
        }
    }

    /// Full binomial name.
    pub fn name(self) -> &'static str {
        match self {
            Species::HomoSapiens => "Homo sapiens",
            Species::ClitarchusHookeri => "Clitarchus hookeri",
            Species::ZapusHudsonius => "Zapus hudsonius",
            Species::CamelusDromedarius => "Camelus dromedarius",
            Species::VenustaconchaEllipsiformis => "Venustaconcha ellipsiformis",
            Species::CaenorhabditisElegans => "Caenorhabditis elegans",
        }
    }

    /// Stable machine key (snake-cased binomial) used to name tenants in
    /// the serving registry and on the wire.
    pub fn key(self) -> &'static str {
        match self {
            Species::HomoSapiens => "homo_sapiens",
            Species::ClitarchusHookeri => "clitarchus_hookeri",
            Species::ZapusHudsonius => "zapus_hudsonius",
            Species::CamelusDromedarius => "camelus_dromedarius",
            Species::VenustaconchaEllipsiformis => "venustaconcha_ellipsiformis",
            Species::CaenorhabditisElegans => "caenorhabditis_elegans",
        }
    }

    /// Parses a [`Species::key`] back to the species.
    pub fn from_key(key: &str) -> Option<Species> {
        ALL_SPECIES.into_iter().find(|s| s.key() == key)
    }

    /// Synthesis profile scaled for simulation (`scale` multiplies the base
    /// genome length; use 1.0 for tests, larger for benches).
    ///
    /// The relative genome sizes, GC contents and repeat fractions follow the
    /// real assemblies' broad statistics so the six datasets stress the
    /// accelerator differently.
    pub fn reference_params(self, scale: f64) -> ReferenceParams {
        let (base_len, gc, repeat_fraction) = match self {
            Species::HomoSapiens => (2_000_000, 0.41, 0.45),
            Species::ClitarchusHookeri => (2_600_000, 0.36, 0.60),
            Species::ZapusHudsonius => (1_800_000, 0.42, 0.40),
            Species::CamelusDromedarius => (1_600_000, 0.41, 0.35),
            Species::VenustaconchaEllipsiformis => (1_200_000, 0.35, 0.50),
            Species::CaenorhabditisElegans => (800_000, 0.35, 0.17),
        };
        ReferenceParams {
            total_len: ((base_len as f64) * scale).max(40_000.0) as usize,
            chromosomes: 4,
            gc_content: gc,
            repeat_fraction,
            ..ReferenceParams::default()
        }
    }

    /// Synthesizes this species' reference at the given scale.
    pub fn synthesize(self, scale: f64) -> ReferenceGenome {
        // Seed derived from the species so datasets are stable run to run.
        let seed = 0x5eed_0000 + self as u64;
        let mut genome = ReferenceGenome::synthesize(&self.reference_params(scale), seed);
        genome_rename(&mut genome, self.name());
        genome
    }
}

fn genome_rename(genome: &mut ReferenceGenome, name: &str) {
    // ReferenceGenome has no setter by design; rebuild with the right name.
    *genome = ReferenceGenome::from_chromosomes(name, genome.chromosomes().to_vec());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_species_have_distinct_profiles() {
        let params: Vec<_> = ALL_SPECIES
            .iter()
            .map(|s| s.reference_params(1.0))
            .collect();
        for i in 0..params.len() {
            for j in (i + 1)..params.len() {
                assert_ne!(params[i], params[j], "species {i} and {j} identical");
            }
        }
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Species::HomoSapiens.label(), "H. s.");
        assert_eq!(Species::CaenorhabditisElegans.label(), "C. e.");
    }

    #[test]
    fn keys_round_trip() {
        for s in ALL_SPECIES {
            assert_eq!(Species::from_key(s.key()), Some(s));
        }
        assert_eq!(
            Species::from_key("homo_sapiens"),
            Some(Species::HomoSapiens)
        );
        assert_eq!(Species::from_key("tyrannosaurus_rex"), None);
    }

    #[test]
    fn synthesize_small_scale() {
        let g = Species::CaenorhabditisElegans.synthesize(0.05);
        assert_eq!(g.name(), "Caenorhabditis elegans");
        assert_eq!(g.total_len(), 40_000);
    }

    #[test]
    fn scale_multiplies_length() {
        let p1 = Species::HomoSapiens.reference_params(1.0);
        let p2 = Species::HomoSapiens.reference_params(2.0);
        assert_eq!(p2.total_len, p1.total_len * 2);
    }
}
