//! Fig. 5/6 — Read-in-Batch vs One-Cycle scheduling, and the PopCount-tree
//! microarchitecture sizing.
//!
//! Reproduces the paper's toy schedule (four SUs with diverse per-read
//! times) under both strategies and the Fig. 6 tree-depth table for 64–512
//! units.

use std::fmt;

use nvwa_sim::Cycle;

use crate::seeding::batch::BatchScheduler;
use crate::seeding::ocra::{OneCycleReadAllocator, PopcountTree, ScheduleEntry};

/// The two strategies compared in Fig. 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Fig. 5(a).
    ReadInBatch,
    /// Fig. 5(b).
    OneCycle,
}

/// The Fig. 5 result: both schedules on the same workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5 {
    /// Per-read execution times used (cycles).
    pub read_times: Vec<Cycle>,
    /// The Read-in-Batch schedule.
    pub batch_schedule: Vec<ScheduleEntry>,
    /// The One-Cycle schedule.
    pub ocra_schedule: Vec<ScheduleEntry>,
    /// Makespan under Read-in-Batch.
    pub batch_makespan: Cycle,
    /// Makespan under One-Cycle.
    pub ocra_makespan: Cycle,
    /// The Fig. 6 PopCount-tree table: (units, depth, fits 1 GHz).
    pub tree_table: Vec<(usize, u32, bool)>,
}

impl Fig5 {
    /// Speedup of One-Cycle over Read-in-Batch on this workload.
    pub fn speedup(&self) -> f64 {
        self.batch_makespan as f64 / self.ocra_makespan as f64
    }
}

impl fmt::Display for Fig5 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Fig. 5 — Read-in-Batch vs One-Cycle scheduling")?;
        writeln!(
            f,
            "  {} reads over 4 SUs; batch makespan {} vs one-cycle {} ({:.2}x)",
            self.read_times.len(),
            self.batch_makespan,
            self.ocra_makespan,
            self.speedup()
        )?;
        for (label, schedule) in [
            ("Read-in-Batch", &self.batch_schedule),
            ("One-Cycle", &self.ocra_schedule),
        ] {
            writeln!(f, "  {label}:")?;
            for e in schedule {
                writeln!(
                    f,
                    "    SU{} read {:2}: [{:4}, {:4})",
                    e.unit, e.read, e.start, e.end
                )?;
            }
        }
        writeln!(f, "Fig. 6 — PopCount tree sizing")?;
        writeln!(f, "  units  depth  1 GHz")?;
        for &(units, depth, fits) in &self.tree_table {
            writeln!(
                f,
                "  {units:5}  {depth:5}  {}",
                if fits { "yes" } else { "no" }
            )?;
        }
        Ok(())
    }
}

/// Simulates a pool of `units` SUs over per-read durations under a
/// strategy; returns the schedule and makespan.
pub fn simulate_schedule(
    units: usize,
    read_times: &[Cycle],
    strategy: Strategy,
) -> (Vec<ScheduleEntry>, Cycle) {
    let ocra = OneCycleReadAllocator::new(units);
    let batch = BatchScheduler::new(units);
    let mut free_at: Vec<Cycle> = vec![0; units];
    let mut next_read = 0u64;
    let mut schedule = Vec::new();
    let mut now: Cycle = 0;
    while (next_read as usize) < read_times.len() {
        let busy: Vec<bool> = free_at.iter().map(|&t| t > now).collect();
        let remaining = read_times.len() as u64 - next_read;
        let (assigned, new_next) = match strategy {
            Strategy::ReadInBatch => batch.allocate(&busy, next_read, remaining),
            Strategy::OneCycle => ocra.allocate(&busy, next_read, remaining),
        };
        next_read = new_next;
        for (unit, read) in assigned.into_iter().enumerate() {
            let Some(read) = read else { continue };
            let start = now + 1; // the allocation cycle
            let end = start + read_times[read as usize];
            free_at[unit] = end;
            schedule.push(ScheduleEntry {
                unit,
                read,
                start,
                end,
            });
        }
        // Advance to the next completion.
        now = free_at
            .iter()
            .copied()
            .filter(|&t| t > now)
            .min()
            .unwrap_or(now + 1);
    }
    let makespan = schedule.iter().map(|e| e.end).max().unwrap_or(0);
    (schedule, makespan)
}

/// Runs the Fig. 5/6 experiment on the paper-style toy workload.
pub fn run() -> Fig5 {
    // Diverse per-read times echoing Fig. 5's sketch: within each batch of
    // four, one straggler dominates.
    let read_times: Vec<Cycle> = vec![90, 40, 60, 35, 55, 30, 80, 25, 45, 70, 20, 50];
    let (batch_schedule, batch_makespan) = simulate_schedule(4, &read_times, Strategy::ReadInBatch);
    let (ocra_schedule, ocra_makespan) = simulate_schedule(4, &read_times, Strategy::OneCycle);
    let tree_table = [64usize, 128, 256, 512]
        .iter()
        .map(|&units| {
            let tree = PopcountTree::new(units);
            (units, tree.depth(), tree.fits_one_cycle(1.0, 100.0))
        })
        .collect();
    Fig5 {
        read_times,
        batch_schedule,
        batch_makespan,
        ocra_schedule,
        ocra_makespan,
        tree_table,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_cycle_beats_batch_on_diverse_reads() {
        let fig = run();
        assert!(
            fig.ocra_makespan < fig.batch_makespan,
            "ocra {} vs batch {}",
            fig.ocra_makespan,
            fig.batch_makespan
        );
        assert!(fig.speedup() > 1.1);
    }

    #[test]
    fn both_schedules_cover_all_reads_exactly_once() {
        let fig = run();
        for schedule in [&fig.batch_schedule, &fig.ocra_schedule] {
            let mut reads: Vec<u64> = schedule.iter().map(|e| e.read).collect();
            reads.sort_unstable();
            let expected: Vec<u64> = (0..fig.read_times.len() as u64).collect();
            assert_eq!(reads, expected);
        }
    }

    #[test]
    fn batch_never_overlaps_batches() {
        // Under Read-in-Batch, every read of batch k starts only after all
        // of batch k-1 finished.
        let fig = run();
        let mut by_batch: Vec<(Cycle, Cycle)> = Vec::new();
        for chunk in fig.batch_schedule.chunks(4) {
            let start = chunk.iter().map(|e| e.start).min().unwrap();
            let end = chunk.iter().map(|e| e.end).max().unwrap();
            by_batch.push((start, end));
        }
        for w in by_batch.windows(2) {
            assert!(w[1].0 >= w[0].1, "batches overlap: {w:?}");
        }
    }

    #[test]
    fn identical_read_times_make_strategies_equal() {
        let times = vec![50u64; 8];
        let (_, batch) = simulate_schedule(4, &times, Strategy::ReadInBatch);
        let (_, ocra) = simulate_schedule(4, &times, Strategy::OneCycle);
        assert_eq!(batch, ocra);
    }

    #[test]
    fn tree_table_matches_paper_depths() {
        let fig = run();
        assert_eq!(fig.tree_table[0], (64, 6, true));
        assert_eq!(fig.tree_table[3], (512, 9, true));
    }
}
