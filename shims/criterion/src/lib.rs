//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of the Criterion API its benches use: [`Criterion`],
//! [`BenchmarkGroup`] (`sample_size`, `throughput`, `bench_function`,
//! `bench_with_input`, `finish`), [`BenchmarkId`], [`Bencher::iter`] and
//! the [`criterion_group!`]/[`criterion_main!`] macros. Timing is a plain
//! warm-up + median-of-samples over [`std::time::Instant`] — no outlier
//! analysis, no HTML reports — printed one line per benchmark.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
            throughput: None,
        }
    }

    /// Benchmarks a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        run_benchmark(&id.to_string(), 20, None, |b| f(b));
    }
}

/// Throughput annotation for a group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named benchmark id, optionally parameterized.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id of the form `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.throughput, |b| f(b));
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.throughput, |b| f(b, input));
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// The per-benchmark timing handle.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `sample_size` calls of `routine` after a short warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..2 {
            black_box(routine());
        }
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_benchmark(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:50} (no samples)");
        return;
    }
    bencher.samples.sort();
    let median = bencher.samples[bencher.samples.len() / 2];
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median.as_nanos() > 0 => {
            format!("  ({:.1} Melem/s)", n as f64 / median.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(n)) if median.as_nanos() > 0 => {
            format!(
                "  ({:.1} MiB/s)",
                n as f64 / median.as_secs_f64() / (1 << 20) as f64
            )
        }
        _ => String::new(),
    };
    println!("{label:50} median {median:>12.3?}{rate}");
}

/// Groups benchmark functions under one entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4u64, |b, &k| {
            b.iter(|| (0..100u64 * k).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("a", 7).to_string(), "a/7");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
