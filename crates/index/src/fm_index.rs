//! Bit-packed FM-index with checkpointed occ counters.
//!
//! This mirrors the LFMapBit hardware layout the paper instantiates its SUs
//! with: the BWT is packed 2 bits per symbol and occurrence counts are
//! checkpointed every [`OCC_INTERVAL`] symbols. A rank query reads exactly
//! one checkpoint block (counters + packed payload) and finishes with
//! bit-parallel popcounts — one block read per query is what the hardware
//! memory trace records.

use crate::bwt::Bwt;
use crate::suffix_array::build_suffix_array;
use crate::trace::{MemAddr, TraceSink};

/// Checkpoint interval of the occ structure, in BWT symbols. The paper sets
/// "the FM-index interval ... to 128".
pub const OCC_INTERVAL: usize = 128;

const WORDS_PER_BLOCK: usize = OCC_INTERVAL / 32; // 32 2-bit codes per u64

/// A half-open suffix-array rank interval `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Inclusive lower rank.
    pub lo: u64,
    /// Exclusive upper rank.
    pub hi: u64,
}

impl Interval {
    /// Number of occurrences represented.
    pub fn len(&self) -> u64 {
        self.hi.saturating_sub(self.lo)
    }

    /// Whether the interval is empty.
    pub fn is_empty(&self) -> bool {
        self.hi <= self.lo
    }
}

/// One occ checkpoint block: cumulative counts then `OCC_INTERVAL` packed
/// symbols.
#[derive(Debug, Clone, PartialEq, Eq)]
struct OccBlock {
    counts: [u64; 4],
    words: [u64; WORDS_PER_BLOCK],
}

/// The FM-index.
///
/// # Examples
///
/// ```
/// use nvwa_index::FmIndex;
/// use nvwa_index::NullTrace;
/// // Text "ACGTACGT" as codes.
/// let fm = FmIndex::from_text(&[0, 1, 2, 3, 0, 1, 2, 3]);
/// let hits = fm.search(&[0, 1, 2], &mut NullTrace); // "ACG"
/// assert_eq!(hits.map(|i| i.len()), Some(2));
/// ```
#[derive(Debug, Clone)]
pub struct FmIndex {
    blocks: Vec<OccBlock>,
    primary: usize,
    c: [u64; 5],
    text_len: usize,
}

impl FmIndex {
    /// Builds the FM-index of `text` (2-bit codes).
    ///
    /// # Panics
    ///
    /// Panics if any code is ≥ 4.
    pub fn from_text(text: &[u8]) -> FmIndex {
        let sa = build_suffix_array(text);
        FmIndex::from_bwt(Bwt::from_text_and_sa(text, &sa))
    }

    /// Builds the FM-index from a precomputed [`Bwt`].
    pub fn from_bwt(bwt: Bwt) -> FmIndex {
        let n = bwt.data.len();
        let n_blocks = n.div_ceil(OCC_INTERVAL).max(1);
        let mut blocks = Vec::with_capacity(n_blocks);
        let mut running = [0u64; 4];
        for b in 0..n_blocks {
            let mut words = [0u64; WORDS_PER_BLOCK];
            let counts = running;
            let start = b * OCC_INTERVAL;
            for off in 0..OCC_INTERVAL {
                let i = start + off;
                if i >= n {
                    break;
                }
                let code = bwt.data[i];
                running[code as usize] += 1;
                words[off / 32] |= (code as u64) << ((off % 32) * 2);
            }
            blocks.push(OccBlock { counts, words });
        }
        let mut c = [0u64; 5];
        for code in 0..4usize {
            c[code + 1] = c[code] + bwt.counts[code];
        }
        // Shift by 1 for the sentinel bucket.
        let c = [c[0] + 1, c[1] + 1, c[2] + 1, c[3] + 1, c[4] + 1];
        FmIndex {
            blocks,
            primary: bwt.primary,
            c,
            text_len: n,
        }
    }

    /// Length of the indexed text (without sentinel).
    pub fn text_len(&self) -> usize {
        self.text_len
    }

    /// Conceptual BWT length (text + sentinel); ranks live in `0..seq_len()`.
    pub fn seq_len(&self) -> u64 {
        self.text_len as u64 + 1
    }

    /// Rank of the sentinel in the conceptual BWT.
    pub fn primary(&self) -> usize {
        self.primary
    }

    /// `C[c]`: start of the `c`-bucket in rank space (sentinel bucket is
    /// rank 0).
    ///
    /// # Panics
    ///
    /// Panics if `c > 3`.
    #[inline]
    pub fn c_of(&self, c: u8) -> u64 {
        self.c[c as usize]
    }

    /// End of the `c`-bucket (== `C[c+1]`, or total length for `c == 3`).
    #[inline]
    pub fn c_end(&self, c: u8) -> u64 {
        self.c[c as usize + 1]
    }

    /// Number of occ blocks (used for footprint/power accounting).
    pub fn occ_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Approximate index footprint in bytes (checkpoints + packed BWT).
    pub fn footprint_bytes(&self) -> usize {
        self.blocks.len() * (4 * 8 + WORDS_PER_BLOCK * 8)
    }

    /// occ(c, i): occurrences of code `c` in the conceptual BWT prefix
    /// `[0, i)`. Records exactly one block access on `trace`.
    ///
    /// # Panics
    ///
    /// Panics if `i > seq_len()` or `c > 3`.
    pub fn occ<T: TraceSink>(&self, c: u8, i: u64, trace: &mut T) -> u64 {
        assert!(c < 4, "code out of range");
        assert!(i <= self.seq_len(), "rank out of range");
        // Convert conceptual rank to stored-BWT index by skipping the
        // sentinel slot.
        let j = if i as usize > self.primary { i - 1 } else { i } as usize;
        let block_idx = (j / OCC_INTERVAL).min(self.blocks.len() - 1);
        trace.record(MemAddr::occ_block(block_idx as u64));
        let block = &self.blocks[block_idx];
        let mut count = block.counts[c as usize];
        let within = j - block_idx * OCC_INTERVAL;
        count += rank_in_words(&block.words, c, within);
        count
    }

    /// One backward-search step: maps the interval of pattern `P` to the
    /// interval of `cP`.
    pub fn backward_ext<T: TraceSink>(&self, interval: Interval, c: u8, trace: &mut T) -> Interval {
        let lo = self.c_of(c) + self.occ(c, interval.lo, trace);
        let hi = self.c_of(c) + self.occ(c, interval.hi, trace);
        Interval { lo, hi }
    }

    /// The full-range interval (all suffixes).
    pub fn full_interval(&self) -> Interval {
        Interval {
            lo: 0,
            hi: self.seq_len(),
        }
    }

    /// Backward search of `pattern`; returns the match interval or `None` if
    /// the pattern does not occur.
    pub fn search<T: TraceSink>(&self, pattern: &[u8], trace: &mut T) -> Option<Interval> {
        let mut interval = self.full_interval();
        for &c in pattern.iter().rev() {
            interval = self.backward_ext(interval, c, trace);
            if interval.is_empty() {
                return None;
            }
        }
        Some(interval)
    }

    /// LF-mapping of rank `i`: the rank of the suffix one position earlier in
    /// the text. Returns `None` when `i` is the sentinel rank (text start).
    pub fn lf<T: TraceSink>(&self, i: u64, trace: &mut T) -> Option<u64> {
        if i as usize == self.primary {
            return None;
        }
        let c = self.bwt_char(i)?;
        Some(self.c_of(c) + self.occ(c, i, trace))
    }

    /// The conceptual BWT character at rank `i` (`None` for the sentinel).
    ///
    /// # Panics
    ///
    /// Panics if `i >= seq_len()`.
    pub fn bwt_char(&self, i: u64) -> Option<u8> {
        assert!(i < self.seq_len(), "rank out of range");
        if i as usize == self.primary {
            return None;
        }
        let j = if i as usize > self.primary { i - 1 } else { i } as usize;
        let block = &self.blocks[j / OCC_INTERVAL];
        let within = j % OCC_INTERVAL;
        let word = block.words[within / 32];
        Some(((word >> ((within % 32) * 2)) & 0b11) as u8)
    }
}

/// Counts occurrences of 2-bit code `c` among the first `count` codes packed
/// in `words`, using the bit-parallel comparison the hardware performs.
#[inline]
fn rank_in_words(words: &[u64; WORDS_PER_BLOCK], c: u8, count: usize) -> u64 {
    debug_assert!(count <= OCC_INTERVAL);
    // Replicate the 2-bit code into all 32 lanes.
    let rep = {
        let mut r = c as u64;
        r |= r << 2;
        r |= r << 4;
        r |= r << 8;
        r |= r << 16;
        r |= r << 32;
        r
    };
    let mut total = 0u64;
    let mut remaining = count;
    for &w in words.iter() {
        if remaining == 0 {
            break;
        }
        let lanes = remaining.min(32);
        let x = w ^ rep; // lanes equal to c become 00
        let neq = (x | (x >> 1)) & 0x5555_5555_5555_5555; // 1 per non-equal lane
        let eq = !neq & 0x5555_5555_5555_5555; // 1 per equal lane
        let mask = if lanes == 32 {
            u64::MAX
        } else {
            (1u64 << (lanes * 2)) - 1
        };
        total += (eq & mask).count_ones() as u64;
        remaining -= lanes;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CountTrace, NullTrace};

    fn naive_count(text: &[u8], pattern: &[u8]) -> u64 {
        if pattern.is_empty() || pattern.len() > text.len() {
            return 0;
        }
        text.windows(pattern.len())
            .filter(|w| *w == pattern)
            .count() as u64
    }

    fn rand_codes(len: usize, mut state: u64) -> Vec<u8> {
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) & 0b11) as u8
            })
            .collect()
    }

    #[test]
    fn search_counts_match_naive() {
        let text = rand_codes(600, 42);
        let fm = FmIndex::from_text(&text);
        for plen in [1usize, 2, 3, 5, 8, 13] {
            for start in (0..text.len() - plen).step_by(37) {
                let pattern = &text[start..start + plen];
                let expected = naive_count(&text, pattern);
                let got = fm
                    .search(pattern, &mut NullTrace)
                    .map(|i| i.len())
                    .unwrap_or(0);
                assert_eq!(got, expected, "pattern at {start} len {plen}");
            }
        }
    }

    #[test]
    fn absent_pattern_returns_none() {
        // Text of all A's cannot contain a C.
        let fm = FmIndex::from_text(&[0u8; 100]);
        assert_eq!(fm.search(&[1], &mut NullTrace), None);
        assert_eq!(fm.search(&[0, 1, 0], &mut NullTrace), None);
    }

    #[test]
    fn occ_is_monotone_and_bounded() {
        let text = rand_codes(300, 7);
        let fm = FmIndex::from_text(&text);
        for c in 0..4u8 {
            let mut prev = 0;
            for i in 0..=fm.seq_len() {
                let o = fm.occ(c, i, &mut NullTrace);
                assert!(o >= prev, "occ must be monotone");
                assert!(o - prev <= 1, "occ can grow by at most one per rank");
                prev = o;
            }
            let total: u64 = fm.occ(c, fm.seq_len(), &mut NullTrace);
            assert_eq!(
                total,
                text.iter().filter(|&&x| x == c).count() as u64,
                "total occ of {c}"
            );
        }
    }

    #[test]
    fn occ_traces_one_block_per_query() {
        let text = rand_codes(500, 3);
        let fm = FmIndex::from_text(&text);
        let mut trace = CountTrace::default();
        fm.occ(2, 137, &mut trace);
        assert_eq!(trace.0, 1);
        let mut trace = CountTrace::default();
        fm.backward_ext(fm.full_interval(), 1, &mut trace);
        assert_eq!(trace.0, 2); // lo and hi boundaries
    }

    #[test]
    fn lf_walk_reconstructs_text() {
        let text = rand_codes(257, 99); // crosses a block boundary
        let fm = FmIndex::from_text(&text);
        // Start from rank 0 (the sentinel suffix): its BWT char is the last
        // text char; repeatedly applying LF walks the text right to left.
        let mut i = 0u64;
        let mut recovered = Vec::with_capacity(text.len());
        loop {
            match fm.bwt_char(i) {
                None => break,
                Some(c) => {
                    recovered.push(c);
                    i = fm.lf(i, &mut NullTrace).expect("lf defined off-sentinel");
                }
            }
        }
        recovered.reverse();
        assert_eq!(recovered, text);
    }

    #[test]
    fn bucket_boundaries_are_consistent() {
        let text = rand_codes(1000, 5);
        let fm = FmIndex::from_text(&text);
        assert_eq!(fm.c_of(0), 1);
        assert_eq!(fm.c_end(3), fm.seq_len());
        for c in 0..3u8 {
            assert_eq!(fm.c_end(c), fm.c_of(c + 1));
        }
    }

    #[test]
    fn single_base_interval_sizes() {
        let text = vec![0u8, 0, 1, 2, 2, 2, 3];
        let fm = FmIndex::from_text(&text);
        for c in 0..4u8 {
            let int = fm.search(&[c], &mut NullTrace);
            let expected = text.iter().filter(|&&x| x == c).count() as u64;
            assert_eq!(int.map(|i| i.len()).unwrap_or(0), expected);
        }
    }

    #[test]
    fn footprint_scales_with_blocks() {
        let fm = FmIndex::from_text(&rand_codes(1000, 1));
        assert_eq!(fm.occ_blocks(), 1000usize.div_ceil(OCC_INTERVAL));
        assert_eq!(fm.footprint_bytes(), fm.occ_blocks() * 64);
    }
}
