//! A bounded MPMC queue with explicit backpressure and close semantics.
//!
//! `std::sync::mpsc` channels are unbounded (or rendezvous) and
//! single-consumer; the serving path needs the opposite: a hard capacity
//! so admission *sheds* instead of growing without bound, multiple
//! consumers (the worker pool), and a `close()` that lets producers stop
//! and consumers drain what remains. Mutex + two condvars, std only.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why a non-blocking push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity — backpressure; the item is handed back.
    Full(T),
    /// The queue was closed; the item is handed back.
    Closed(T),
}

/// Outcome of a blocking pop.
#[derive(Debug, PartialEq, Eq)]
pub enum Popped<T> {
    /// An item.
    Item(T),
    /// The timeout elapsed with the queue still empty (and open).
    TimedOut,
    /// The queue is closed *and* fully drained — no item will ever come.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The bounded queue.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    not_empty: Condvar,
    not_full: Condvar,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
            }),
            capacity,
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// The capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap().items.len()
    }

    /// Whether [`BoundedQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.inner.lock().unwrap().closed
    }

    /// Pushes without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity (the backpressure signal) and
    /// [`PushError::Closed`] after close; both return the item.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Pushes, waiting while the queue is full.
    ///
    /// # Errors
    ///
    /// Returns the item if the queue is (or becomes) closed.
    pub fn push_wait(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if inner.closed {
                return Err(item);
            }
            if inner.items.len() < self.capacity {
                inner.items.push_back(item);
                drop(inner);
                self.not_empty.notify_one();
                return Ok(());
            }
            inner = self.not_full.wait(inner).unwrap();
        }
    }

    /// Pops, waiting up to `timeout` (or indefinitely when `None`).
    ///
    /// Items remaining after a close are still delivered; [`Popped::Closed`]
    /// means closed **and** empty, so a consumer loop drains naturally.
    pub fn pop_wait(&self, timeout: Option<Duration>) -> Popped<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.items.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Popped::Item(item);
            }
            if inner.closed {
                return Popped::Closed;
            }
            match timeout {
                Some(t) => {
                    let (guard, result) = self.not_empty.wait_timeout(inner, t).unwrap();
                    inner = guard;
                    if result.timed_out() && inner.items.is_empty() && !inner.closed {
                        return Popped::TimedOut;
                    }
                }
                None => inner = self.not_empty.wait(inner).unwrap(),
            }
        }
    }

    /// Closes the queue: future pushes fail, consumers drain the remainder
    /// and then observe [`Popped::Closed`]. Idempotent.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        drop(inner);
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_queue_sheds_instead_of_growing() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.depth(), 2);
        assert_eq!(q.pop_wait(None), Popped::Item(1));
        q.try_push(3).unwrap();
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn close_rejects_pushes_but_drains_consumers() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.close();
        assert!(matches!(q.try_push("b"), Err(PushError::Closed("b"))));
        assert_eq!(q.pop_wait(None), Popped::Item("a"));
        assert_eq!(q.pop_wait(None), Popped::Closed);
        assert_eq!(q.pop_wait(Some(Duration::from_millis(1))), Popped::Closed);
    }

    #[test]
    fn pop_times_out_on_empty_open_queue() {
        let q: BoundedQueue<u32> = BoundedQueue::new(1);
        assert_eq!(q.pop_wait(Some(Duration::from_millis(5))), Popped::TimedOut);
    }

    #[test]
    fn push_wait_unblocks_on_pop_and_fails_on_close() {
        let q = Arc::new(BoundedQueue::new(1));
        q.try_push(0u32).unwrap();
        let q2 = Arc::clone(&q);
        let producer = std::thread::spawn(move || q2.push_wait(1));
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(q.pop_wait(None), Popped::Item(0));
        producer.join().unwrap().unwrap();
        assert_eq!(q.pop_wait(None), Popped::Item(1));

        let q2 = Arc::clone(&q);
        q.try_push(2).unwrap();
        let blocked = std::thread::spawn(move || q2.push_wait(3));
        std::thread::sleep(Duration::from_millis(10));
        q.close();
        assert_eq!(blocked.join().unwrap(), Err(3));
    }

    #[test]
    fn many_producers_many_consumers_lose_nothing() {
        let q = Arc::new(BoundedQueue::new(8));
        let total = 4 * 250;
        let mut handles = Vec::new();
        for p in 0..4u64 {
            let q = Arc::clone(&q);
            handles.push(std::thread::spawn(move || {
                for i in 0..250u64 {
                    q.push_wait(p * 1000 + i).unwrap();
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let q = Arc::clone(&q);
            consumers.push(std::thread::spawn(move || {
                let mut seen = Vec::new();
                loop {
                    match q.pop_wait(None) {
                        Popped::Item(v) => seen.push(v),
                        Popped::Closed => return seen,
                        Popped::TimedOut => unreachable!(),
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all.len(), total);
        all.dedup();
        assert_eq!(all.len(), total, "duplicated items");
    }
}
