//! End-to-end checks of the telemetry subsystem's acceptance criteria.
//!
//! * Chrome-trace busy spans integrate to the reported SU/EU utilization
//!   (within 1% — in fact exactly, since spans and the stall tracker share
//!   event-boundary endpoints).
//! * Per-cause stall cycles sum exactly to each pool's idle cycles, and
//!   busy + idle covers the whole pool-time rectangle.
//! * Metrics snapshots and `BENCH_PR1.json` pass their schema validators.
//! * The trace for a tiny 2-SU/2-EU run is byte-stable against a golden
//!   file (regenerate with `NVWA_BLESS=1 cargo test -q --test
//!   telemetry_integration`).

use nvwa::core::config::{EuClass, NvwaConfig};
use nvwa::core::system::{simulate_instrumented, SimOptions, SimRun};
use nvwa::core::units::workload::SyntheticWorkloadParams;
use nvwa::telemetry::snapshot::{
    validate_bench_report, validate_chrome_trace, validate_metrics_snapshot,
};
use nvwa::telemetry::{cycles_to_us, JsonValue, SnapshotMeta, StallCause, PID_ACCELERATOR};

fn instrumented_run() -> SimRun {
    let works = SyntheticWorkloadParams {
        reads: 400,
        ..SyntheticWorkloadParams::default()
    }
    .generate(7);
    simulate_instrumented(
        &NvwaConfig::small_test(),
        &works,
        &SimOptions { trace: true },
    )
}

#[test]
fn trace_busy_spans_integrate_to_reported_utilization() {
    let config = NvwaConfig::small_test();
    let run = instrumented_run();
    let trace = run.trace.as_ref().expect("trace requested");
    let total_us = cycles_to_us(run.report.total_cycles);

    let su_count = config.su_count;
    let su_busy_us: f64 = (0..su_count)
        .map(|i| trace.track_busy_us(PID_ACCELERATOR, i, "read"))
        .sum();
    let su_expected = run.report.su_utilization * su_count as f64 * total_us;
    assert!(
        (su_busy_us - su_expected).abs() <= 0.01 * su_expected,
        "SU busy spans {su_busy_us} µs vs utilization integral {su_expected} µs"
    );

    let eu_count = config.total_eus();
    let eu_busy_us: f64 = (0..eu_count)
        .map(|j| trace.track_busy_us(PID_ACCELERATOR, su_count + j, "hit"))
        .sum();
    let eu_expected = run.report.eu_utilization * eu_count as f64 * total_us;
    assert!(
        (eu_busy_us - eu_expected).abs() <= 0.01 * eu_expected,
        "EU busy spans {eu_busy_us} µs vs utilization integral {eu_expected} µs"
    );
}

#[test]
fn stall_cycles_sum_to_idle_cycles_in_snapshot() {
    let config = NvwaConfig::small_test();
    let run = instrumented_run();
    let pool_time = run.report.total_cycles as f64;
    for (prefix, units) in [("su", config.su_count), ("eu", config.total_eus())] {
        let gauge = |name: &str| {
            run.metrics
                .gauge_value(name)
                .unwrap_or_else(|| panic!("gauge {name} missing"))
        };
        let by_cause: f64 = StallCause::IDLE_CAUSES
            .iter()
            .map(|c| gauge(&format!("{prefix}.stall.{}.cycles", c.label())))
            .sum();
        let idle = gauge(&format!("{prefix}.idle_cycles"));
        let busy = gauge(&format!("{prefix}.busy_cycles"));
        assert_eq!(by_cause, idle, "{prefix}: per-cause sum != idle cycles");
        assert_eq!(
            busy + idle,
            units as f64 * pool_time,
            "{prefix}: busy + idle != pool-time rectangle"
        );
    }
}

#[test]
fn metrics_snapshot_passes_schema_validation() {
    let run = instrumented_run();
    let meta = SnapshotMeta::collect(1);
    let text = run.metrics.snapshot_json(&meta);
    let doc = JsonValue::parse(&text).expect("snapshot parses");
    validate_metrics_snapshot(&doc).expect("snapshot validates");
}

#[test]
fn checked_in_bench_report_passes_schema_validation() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_PR1.json");
    let text = std::fs::read_to_string(path).expect("BENCH_PR1.json readable");
    let doc = JsonValue::parse(&text).expect("BENCH_PR1.json parses");
    validate_bench_report(&doc).expect("BENCH_PR1.json validates");
}

/// A 2-SU/2-EU system small enough for a human-readable golden trace.
fn tiny_config() -> NvwaConfig {
    NvwaConfig {
        su_count: 2,
        eu_classes: vec![EuClass::new(16, 1), EuClass::new(32, 1)],
        hits_buffer_depth: 16,
        alloc_batch_size: 4,
        su_cache_blocks: 64,
        stats_bucket: 256,
        ..NvwaConfig::paper()
    }
}

#[test]
fn tiny_trace_round_trips_and_matches_golden_file() {
    let works = SyntheticWorkloadParams {
        reads: 8,
        ..SyntheticWorkloadParams::default()
    }
    .generate(0xA11CE);
    let run = simulate_instrumented(&tiny_config(), &works, &SimOptions { trace: true });
    let trace = run.trace.as_ref().expect("trace requested");
    let text = trace.to_json();

    // Parses, validates as a Chrome trace, and serialization is stable.
    let doc = JsonValue::parse(&text).expect("trace parses");
    validate_chrome_trace(&doc).expect("trace validates");
    assert_eq!(doc.to_string_pretty(), text, "round trip is byte-stable");

    let golden = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/trace_tiny.json");
    match nvwa::testkit::golden::compare_or_bless(std::path::Path::new(golden), &text) {
        nvwa::testkit::golden::Outcome::Matched | nvwa::testkit::golden::Outcome::Blessed => {}
        nvwa::testkit::golden::Outcome::Drifted(summary) => panic!("{summary}"),
    }
}
