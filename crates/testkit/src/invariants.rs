//! Post-run invariant checking over [`SimRun`]: the conservation laws the
//! telemetry layer promises (DESIGN.md §8), asserted on *any* simulation,
//! not just the telemetry suite.
//!
//! The laws:
//!
//! 1. **Stall conservation** — per pool (`su`, `eu`), the per-cause stall
//!    integrals sum exactly to the pool's idle cycles, and
//!    `busy + idle == units × total_cycles` (the pool-time rectangle).
//! 2. **Trace integration** — when a Chrome trace was recorded, the busy
//!    spans of each pool integrate to the reported utilization (≤1%
//!    tolerance; span endpoints and the stall tracker share event
//!    boundaries, so in practice they agree exactly).
//! 3. **HBM conservation** — `bytes == requests × transaction_bytes` and
//!    `energy_j == bytes × 8 × pJ/bit × 1e-12` (the 7 pJ/bit HBM model).
//! 4. **Monotonic, bounded time** — every trace span starts at or after
//!    cycle 0 and ends at or before the run's total time; utilizations
//!    are in `(0, 1]`.
//! 5. **Report/registry agreement** — the [`SimReport`] view matches the
//!    registry counters and gauges it claims to summarize, and the
//!    latency histograms saw every read and every dispatched hit.

use nvwa_core::config::NvwaConfig;
use nvwa_core::system::{simulate_instrumented, SimOptions, SimRun};
use nvwa_core::units::workload::ReadWork;
use nvwa_telemetry::{cycles_to_us, JsonValue, StallCause, PID_ACCELERATOR};

/// Runs every invariant over a finished run. Returns the list of
/// violations (empty when all hold).
pub fn check_sim_run(run: &SimRun, config: &NvwaConfig) -> Vec<String> {
    let mut violations = Vec::new();
    let m = &run.metrics;
    let r = &run.report;
    let total = r.total_cycles as f64;
    let gauge = |name: &str, violations: &mut Vec<String>| -> f64 {
        m.gauge_value(name).unwrap_or_else(|| {
            violations.push(format!("gauge {name} missing from the registry"));
            0.0
        })
    };

    // (1) Stall conservation per pool.
    for (prefix, units) in [("su", config.su_count), ("eu", config.total_eus())] {
        let busy = gauge(&format!("{prefix}.busy_cycles"), &mut violations);
        let idle = gauge(&format!("{prefix}.idle_cycles"), &mut violations);
        let by_cause: f64 = StallCause::IDLE_CAUSES
            .iter()
            .map(|c| {
                gauge(
                    &format!("{prefix}.stall.{}.cycles", c.label()),
                    &mut violations,
                )
            })
            .sum();
        if by_cause != idle {
            violations.push(format!(
                "{prefix}: per-cause stall sum {by_cause} != idle cycles {idle}"
            ));
        }
        let rectangle = units as f64 * total;
        if busy + idle != rectangle {
            violations.push(format!(
                "{prefix}: busy {busy} + idle {idle} != pool-time rectangle {rectangle}"
            ));
        }
    }

    // (3) HBM conservation.
    let requests = m.counter_value("hbm.requests").unwrap_or(0);
    let bytes = m.counter_value("hbm.bytes").unwrap_or(0);
    if bytes != requests * config.hbm.transaction_bytes {
        violations.push(format!(
            "hbm: bytes {bytes} != requests {requests} × transaction_bytes {}",
            config.hbm.transaction_bytes
        ));
    }
    let energy = gauge("hbm.energy_j", &mut violations);
    let expected_energy = bytes as f64 * 8.0 * config.hbm.energy_pj_per_bit * 1e-12;
    if (energy - expected_energy).abs() > expected_energy.abs() * 1e-12 + 1e-18 {
        violations.push(format!(
            "hbm: energy {energy} J != bytes×8×pJ/bit = {expected_energy} J"
        ));
    }
    if (r.hbm_energy_j - energy).abs() > energy.abs() * 1e-12 + 1e-18 {
        violations.push(format!(
            "report.hbm_energy_j {} disagrees with gauge {energy}",
            r.hbm_energy_j
        ));
    }

    // (4) Utilization bounds.
    for (name, v) in [("su", r.su_utilization), ("eu", r.eu_utilization)] {
        if !(v > 0.0 && v <= 1.0) {
            violations.push(format!("{name} utilization {v} outside (0, 1]"));
        }
    }

    // (5) Report/registry agreement.
    let counter_checks = [
        ("coordinator.hits_dispatched", r.hits_dispatched),
        ("coordinator.alloc_rounds", r.alloc_rounds),
        ("coordinator.buffer_switches", r.buffer_switches),
        ("sim.reads_issued", r.reads),
    ];
    for (name, want) in counter_checks {
        match m.counter_value(name) {
            Some(got) if got == want => {}
            Some(got) => {
                violations.push(format!("counter {name}: registry {got} != report {want}"))
            }
            None => violations.push(format!("counter {name} missing from the registry")),
        }
    }
    if m.gauge_value("sim.total_cycles") != Some(total) {
        violations.push("gauge sim.total_cycles disagrees with the report".to_string());
    }
    match m.histogram_value("su.read_cycles") {
        Some(h) if h.count() == r.reads => {}
        Some(h) => violations.push(format!(
            "su.read_cycles histogram saw {} reads, report says {}",
            h.count(),
            r.reads
        )),
        None => violations.push("histogram su.read_cycles missing".to_string()),
    }
    match m.histogram_value("eu.hit_cycles") {
        Some(h) if h.count() == r.hits_dispatched => {}
        Some(h) => violations.push(format!(
            "eu.hit_cycles histogram saw {} hits, report says {}",
            h.count(),
            r.hits_dispatched
        )),
        None => violations.push("histogram eu.hit_cycles missing".to_string()),
    }

    // (2) + (4) Trace checks, when a trace was recorded.
    if let Some(trace) = &run.trace {
        let total_us = cycles_to_us(r.total_cycles);
        let su_busy_us: f64 = (0..config.su_count)
            .map(|su| trace.track_busy_us(PID_ACCELERATOR, su, "read"))
            .sum();
        let su_expected = r.su_utilization * config.su_count as f64 * total_us;
        if (su_busy_us - su_expected).abs() > su_expected * 0.01 {
            violations.push(format!(
                "trace: SU busy spans {su_busy_us}µs vs utilization integral {su_expected}µs"
            ));
        }
        let eus = config.total_eus();
        let eu_busy_us: f64 = (0..eus)
            .map(|eu| trace.track_busy_us(PID_ACCELERATOR, config.su_count + eu, "hit"))
            .sum();
        let eu_expected = r.eu_utilization * eus as f64 * total_us;
        if (eu_busy_us - eu_expected).abs() > eu_expected * 0.01 {
            violations.push(format!(
                "trace: EU busy spans {eu_busy_us}µs vs utilization integral {eu_expected}µs"
            ));
        }
        violations.extend(check_span_bounds(&trace.to_json_value(), total_us));
    }
    violations
}

/// Walks a Chrome-trace document and checks every complete span for
/// non-negative, bounded, monotonically consistent timestamps. Public so
/// serve traces (a different time base) can reuse the walk with their own
/// bound.
pub fn check_span_bounds(doc: &JsonValue, total_us: f64) -> Vec<String> {
    let mut violations = Vec::new();
    let Some(events) = doc.get("traceEvents").and_then(JsonValue::as_arr) else {
        violations.push("trace document has no traceEvents array".to_string());
        return violations;
    };
    // Span endpoints sit on event boundaries; allow one cycle of rounding.
    let slack = cycles_to_us(1);
    for ev in events {
        let ph = ev.get("ph").and_then(JsonValue::as_str).unwrap_or("");
        let ts = ev.get("ts").and_then(JsonValue::as_num).unwrap_or(0.0);
        let name = ev.get("name").and_then(JsonValue::as_str).unwrap_or("?");
        if ts < 0.0 {
            violations.push(format!("span {name:?}: negative timestamp {ts}"));
        }
        if ph == "X" {
            let dur = ev.get("dur").and_then(JsonValue::as_num).unwrap_or(0.0);
            if dur < 0.0 {
                violations.push(format!("span {name:?}: negative duration {dur}"));
            }
            if ts + dur > total_us + slack {
                violations.push(format!(
                    "span {name:?}: ends at {}µs, after the run end {total_us}µs",
                    ts + dur
                ));
            }
        }
    }
    violations
}

/// [`simulate_instrumented`] + [`check_sim_run`]: every simulation run
/// through this wrapper is invariant-checked for free.
///
/// # Panics
///
/// Panics listing every violated invariant.
pub fn simulate_checked(config: &NvwaConfig, works: &[ReadWork], opts: &SimOptions) -> SimRun {
    let run = simulate_instrumented(config, works, opts);
    assert_sim_run(&run, config);
    run
}

/// Panics with the full violation list if any invariant fails.
pub fn assert_sim_run(run: &SimRun, config: &NvwaConfig) {
    let violations = check_sim_run(run, config);
    assert!(
        violations.is_empty(),
        "simulator invariants violated:\n  {}",
        violations.join("\n  ")
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvwa_core::units::workload::SyntheticWorkloadParams;

    fn works(reads: usize) -> Vec<ReadWork> {
        SyntheticWorkloadParams {
            reads,
            ..SyntheticWorkloadParams::default()
        }
        .generate(11)
    }

    #[test]
    fn healthy_runs_pass_with_and_without_trace() {
        let config = NvwaConfig::small_test();
        let w = works(120);
        simulate_checked(&config, &w, &SimOptions::default());
        simulate_checked(&config, &w, &SimOptions { trace: true });
    }

    #[test]
    fn stalled_configuration_still_conserves() {
        // A tiny buffer provokes Store-Buffer stalls; conservation must
        // hold with several causes live at once.
        let config = NvwaConfig {
            hits_buffer_depth: 8,
            alloc_batch_size: 4,
            ..NvwaConfig::small_test()
        };
        simulate_checked(&config, &works(150), &SimOptions { trace: true });
    }

    #[test]
    fn tampered_run_is_caught() {
        let config = NvwaConfig::small_test();
        let mut run = simulate_instrumented(&config, &works(60), &SimOptions::default());
        // Corrupt one stall gauge: the conservation sum must break.
        let id = run.metrics.gauge("su.stall.drain.cycles");
        run.metrics.set_gauge(id, 1e12);
        let violations = check_sim_run(&run, &config);
        assert!(
            violations.iter().any(|v| v.contains("per-cause stall sum")),
            "tampering not detected: {violations:?}"
        );
    }

    #[test]
    fn span_bound_walk_flags_out_of_window_spans() {
        let doc = JsonValue::obj(vec![(
            "traceEvents",
            JsonValue::Arr(vec![JsonValue::obj(vec![
                ("ph", JsonValue::Str("X".to_string())),
                ("name", JsonValue::Str("late".to_string())),
                ("ts", JsonValue::Num(90.0)),
                ("dur", JsonValue::Num(50.0)),
            ])]),
        )]);
        let violations = check_span_bounds(&doc, 100.0);
        assert_eq!(violations.len(), 1);
        assert!(violations[0].contains("after the run end"));
    }
}
