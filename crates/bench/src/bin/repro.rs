//! Regenerates every table and figure of the paper as text.
//!
//! ```text
//! cargo run --release -p nvwa-bench --bin repro            # all, quick scale
//! cargo run --release -p nvwa-bench --bin repro -- --full  # all, full scale
//! cargo run --release -p nvwa-bench --bin repro -- fig11   # one experiment
//! ```
//!
//! `--threads N` pins the evaluation harness's thread pool (workload
//! construction and sweep fan-out — every figure is identical at any
//! thread count); the default is `NVWA_THREADS` or the hardware
//! parallelism. `--metrics-out <file>` writes a metrics snapshot with a
//! `repro.<experiment>.wall_ms` gauge per experiment run.

use std::time::Instant;

use nvwa_bench::{scale_from_args, threads_from_args, EXPERIMENTS};
use nvwa_core::experiments::{fig11, fig12, fig13, fig14, fig2, fig5, fig7, fig9, tables, Scale};
use nvwa_telemetry::{MetricsRegistry, SnapshotMeta};

fn run_one(name: &str, scale: Scale) {
    println!("================================================================");
    match name {
        "fig2" => print!("{}", fig2::run(scale)),
        "fig5" => print!("{}", fig5::run()),
        "fig7" => print!("{}", fig7::run()),
        "fig9" => print!("{}", fig9::run()),
        "fig11" => print!("{}", fig11::run(scale)),
        "fig12" => print!("{}", fig12::run(scale)),
        "fig13" => print!("{}", fig13::run(scale)),
        "fig14" => print!("{}", fig14::run(scale)),
        "table1" => print!("{}", tables::table1()),
        "table2" => print!("{}", tables::table2()),
        "table3" => print!("{}", tables::table3()),
        "headline" => print!("{}", tables::headline()),
        other => eprintln!("unknown experiment {other:?}; known: {EXPERIMENTS:?}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    if let Some(n) = threads_from_args(&args) {
        nvwa_sim::par::set_default_threads(n);
    }
    let metrics_out = args
        .iter()
        .position(|a| a == "--metrics-out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let consumed: Vec<usize> = ["--threads", "--metrics-out"]
        .iter()
        .filter_map(|flag| args.iter().position(|a| a == flag))
        .flat_map(|p| [p, p + 1])
        .collect();
    let requested: Vec<&str> = args
        .iter()
        .enumerate()
        .filter(|(i, a)| a.as_str() != "--full" && !consumed.contains(i))
        .map(|(_, a)| a.as_str())
        .collect();
    let to_run: Vec<&str> = if requested.is_empty() {
        EXPERIMENTS.to_vec()
    } else {
        requested
    };
    println!("NvWa reproduction — experiment suite ({scale:?} scale)");
    let mut metrics = MetricsRegistry::new();
    let ran = metrics.counter("repro.experiments_run");
    for name in to_run {
        let start = Instant::now();
        run_one(name, scale);
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        metrics.inc(ran, 1);
        let id = metrics.gauge(&format!("repro.{name}.wall_ms"));
        metrics.set_gauge(id, wall_ms);
    }
    if let Some(path) = metrics_out {
        let meta = SnapshotMeta::collect(nvwa_sim::par::current_threads());
        match std::fs::write(&path, metrics.snapshot_json(&meta)) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("repro: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
