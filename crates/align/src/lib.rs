//! Alignment substrate for the NvWa reproduction.
//!
//! The paper's extension units (EUs) and the CPU baseline both execute the
//! standard BWA-MEM seed-and-extend algorithms; this crate implements them
//! from scratch:
//!
//! * [`scoring`] — substitution/affine-gap scoring schemes (BWA-MEM default).
//! * [`cigar`] — alignment edit transcripts.
//! * [`sw`] — full affine-gap Smith-Waterman, local and extension
//!   (anchored) variants, with traceback.
//! * [`banded`] — banded extension alignment (the matrix-fill workload the
//!   systolic-array EUs execute).
//! * [`chain`] — seed filtering and chaining (pipeline Step-❷).
//! * [`gact`] — Darwin's GACT tiling for arbitrary-length (long-read)
//!   extension with constant memory.
//! * [`pipeline`] — the end-to-end software aligner; it also emits the
//!   per-read *workload profile* (memory-access trace + extension tasks)
//!   that drives the execution-driven hardware simulation.
//! * [`seeding`] — the pluggable seeding abstraction behind the paper's
//!   unified interface: FMD/SMEM and hash-based k-mer seeding.
//! * [`myers`] — Myers bit-parallel edit distance (the GenASM/Bitap
//!   algorithm family), single-word and multi-word banded variants with
//!   traceback — the extension unit the short-read hot path uses.
//! * [`kernel`] — the extension-kernel seam: [`kernel::KernelPolicy`]
//!   selects bit-parallel vs banded-SW per read and adapts the edit
//!   script to the affine scoring surface.
//! * [`long_read`] — the *seed-and-chain-then-fill* long-read pipeline of
//!   the paper's Sec. VI (minimizer seeding + chaining + GACT fill).
//! * [`sam`] — minimal SAM output.

pub mod banded;
pub mod chain;
pub mod cigar;
pub mod gact;
pub mod kernel;
pub mod long_read;
pub mod myers;
pub mod pipeline;
pub mod sam;
pub mod scoring;
pub mod seeding;
pub mod sw;

pub use cigar::{Cigar, CigarOp};
pub use kernel::KernelPolicy;
pub use pipeline::{AlignScratch, AlignerConfig, Alignment, AlignmentOutcome, SoftwareAligner};
pub use scoring::Scoring;
pub use sw::DpScratch;
