//! The extension unit (EU) timing model.
//!
//! An EU is a systolic array of `pes` PEs: a dispatched hit occupies it for
//! the Formula-3 matrix-fill latency plus the constant trace-back time
//! (footnote 4 of the paper: trace-back latency is independent of the PE
//! count, so it is a fixed adder).

use nvwa_sim::Cycle;

use crate::config::EuAlgorithm;
use crate::extension::systolic::matrix_fill_latency;
use crate::interface::Hit;

/// Matrix-fill latency of a GenASM/Bitap-style bit-parallel unit: the text
/// streams once per pattern word, so `R × ⌈Q / lanes⌉` cycles.
pub fn bit_parallel_latency(ref_len: u64, query_len: u64, lanes: u32) -> Cycle {
    assert!(lanes > 0, "need at least one bit lane");
    if ref_len == 0 || query_len == 0 {
        return 0;
    }
    ref_len * query_len.div_ceil(lanes as u64)
}

/// The EU timing model for one unit size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EuModel {
    pes: u32,
    traceback: Cycle,
    algorithm: EuAlgorithm,
}

impl EuModel {
    /// Creates a systolic-array model for a unit of `pes` PEs with the
    /// given constant trace-back latency.
    ///
    /// # Panics
    ///
    /// Panics if `pes == 0`.
    pub fn new(pes: u32, traceback: Cycle) -> EuModel {
        EuModel::with_algorithm(pes, traceback, EuAlgorithm::Systolic)
    }

    /// Creates a model with an explicit algorithm family.
    ///
    /// # Panics
    ///
    /// Panics if `pes == 0`.
    pub fn with_algorithm(pes: u32, traceback: Cycle, algorithm: EuAlgorithm) -> EuModel {
        assert!(pes > 0, "need at least one PE");
        EuModel {
            pes,
            traceback,
            algorithm,
        }
    }

    /// PE count (bit lanes for `BitParallel`).
    pub fn pes(&self) -> u32 {
        self.pes
    }

    /// Total occupancy of one hit: load (1 cycle) + matrix fill + trace
    /// back.
    pub fn task_latency(&self, hit: &Hit) -> Cycle {
        let r = hit.ref_len.max(1) as u64;
        let q = hit.query_len.max(1) as u64;
        let fill = match self.algorithm {
            EuAlgorithm::Systolic => matrix_fill_latency(r, q, self.pes),
            EuAlgorithm::BitParallel => bit_parallel_latency(r, q, self.pes),
        };
        1 + fill + self.traceback
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(q: u32, r: u32) -> Hit {
        Hit {
            read_idx: 0,
            hit_idx: 0,
            direction: false,
            read_pos: (0, q),
            ref_pos: 0,
            query_len: q,
            ref_len: r,
        }
    }

    #[test]
    fn latency_includes_fill_and_traceback() {
        let eu = EuModel::new(16, 32);
        // (20 + 15) × ceil(10/16 = 1) = 35, +1 load +32 traceback.
        assert_eq!(eu.task_latency(&hit(10, 20)), 1 + 35 + 32);
    }

    #[test]
    fn matched_unit_is_fastest_for_its_class() {
        let h = hit(20, 24);
        let lat: Vec<Cycle> = [16u32, 32, 64, 128]
            .iter()
            .map(|&p| EuModel::new(p, 32).task_latency(&h))
            .collect();
        // 32-PE is optimal for a 20-long hit (one pass, minimal bubble).
        let best = lat.iter().min().unwrap();
        assert_eq!(lat[1], *best);
    }

    #[test]
    fn long_hit_on_small_unit_iterates() {
        let h = hit(127, 130);
        let small = EuModel::new(16, 0).task_latency(&h);
        let big = EuModel::new(128, 0).task_latency(&h);
        assert!(small > big * 3, "small {small} vs big {big}");
    }

    #[test]
    fn bit_parallel_latency_streams_text_once_per_word() {
        // Q=20 on 64-lane unit: one word → R cycles.
        assert_eq!(bit_parallel_latency(100, 20, 64), 100);
        // Q=127 on 64 lanes: two words → 2R.
        assert_eq!(bit_parallel_latency(100, 127, 64), 200);
        assert_eq!(bit_parallel_latency(0, 5, 64), 0);
    }

    #[test]
    fn algorithms_differ_but_scale_similarly() {
        let h = hit(100, 150);
        let sys = EuModel::with_algorithm(64, 0, crate::config::EuAlgorithm::Systolic);
        let bit = EuModel::with_algorithm(64, 0, crate::config::EuAlgorithm::BitParallel);
        // Both iterate twice for Q=100 on 64 lanes/PEs, with different
        // constants.
        assert_ne!(sys.task_latency(&h), bit.task_latency(&h));
        // Both still prefer matched units for short hits.
        let short = hit(10, 60);
        for algo in [
            crate::config::EuAlgorithm::Systolic,
            crate::config::EuAlgorithm::BitParallel,
        ] {
            let small = EuModel::with_algorithm(16, 0, algo).task_latency(&short);
            let large = EuModel::with_algorithm(128, 0, algo).task_latency(&short);
            assert!(small <= large, "{algo:?}: {small} vs {large}");
        }
    }

    #[test]
    fn degenerate_hit_still_has_cost() {
        let eu = EuModel::new(16, 8);
        assert!(eu.task_latency(&hit(0, 0)) >= 9);
    }
}
