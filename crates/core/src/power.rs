//! Analytic area/power model (Table II).
//!
//! The paper synthesizes every module with Design Compiler (SIMC 14 nm) and
//! evaluates SRAMs with CACTI 7.0 scaled to 14 nm; neither tool exists
//! here, so each module is modeled as logic blocks + SRAM macros whose
//! per-unit constants are *calibrated once* against the paper's published
//! Table II breakdown (documented per constant below). The model then
//! scales structurally — more EU classes grow the allocator logic, deeper
//! buffers grow the Coordinator SRAM — which is what the Fig. 13(b) power
//! curve needs.

use nvwa_sim::power::{AreaPower, LogicBlock, SramMacro};

use crate::config::NvwaConfig;

/// Calibration constants, derived by dividing Table II's entries by the
/// paper configuration's structural counts (128 SUs, 2880 PEs, 70 EUs,
/// 512 KB SU SRAM, 20 MB EU SRAM, 1024-deep buffers, 4 classes).
mod cal {
    /// SU logic: 0.5 mm² / 0.36 W over 128 SUs.
    pub const SU_LOGIC_MM2: f64 = 0.5 / 128.0;
    pub const SU_LOGIC_W: f64 = 0.36 / 128.0;
    /// SU table SRAM: 2.16 mm² / 0.71 W over 0.5 MiB.
    pub const SU_SRAM_MM2_PER_MIB: f64 = 2.16 / 0.5;
    pub const SU_SRAM_W_PER_MIB: f64 = 0.71 / 0.5;
    /// EU logic: 1.62 mm² / 0.30 W over 2880 PEs.
    pub const EU_LOGIC_MM2: f64 = 1.62 / 2880.0;
    pub const EU_LOGIC_W: f64 = 0.30 / 2880.0;
    /// EU table SRAM: 21.15 mm² / 3.614 W over 20 MiB.
    pub const EU_SRAM_MM2_PER_MIB: f64 = 21.15 / 20.0;
    pub const EU_SRAM_W_PER_MIB: f64 = 3.614 / 20.0;
    /// EU SRAM provisioning: 20 MiB / 2880 PEs.
    pub const EU_SRAM_MIB_PER_PE: f64 = 20.0 / 2880.0;
    /// Seeding Scheduler SPM: 0.13 mm² / 0.04 W for the 128-SU prefetcher.
    pub const SEED_SPM_MM2: f64 = 0.13 / 128.0;
    pub const SEED_SPM_W: f64 = 0.04 / 128.0;
    /// Seeding Scheduler logic (mask tables + PopCount tree): 0.1 mm² /
    /// 0.072 W at 128 SUs.
    pub const SEED_LOGIC_MM2: f64 = 0.1 / 128.0;
    pub const SEED_LOGIC_W: f64 = 0.072 / 128.0;
    /// Extension Scheduler status SRAM: 0.065 mm² / 0.021 W over 70 EUs.
    pub const EXT_SRAM_MM2: f64 = 0.065 / 70.0;
    pub const EXT_SRAM_W: f64 = 0.021 / 70.0;
    /// Extension Scheduler logic: 0.23 mm² / 0.165 W over 70 EUs.
    pub const EXT_LOGIC_MM2: f64 = 0.23 / 70.0;
    pub const EXT_LOGIC_W: f64 = 0.165 / 70.0;
    /// Coordinator buffers: 0.782 mm² / 0.257 W for 2 × 1024 entries of
    /// 64 B plus processing metadata (the paper's 150 KB).
    pub const COORD_SRAM_MM2_PER_MIB: f64 = 0.782 / (150.0 / 1024.0);
    pub const COORD_SRAM_W_PER_MIB: f64 = 0.257 / (150.0 / 1024.0);
    /// Bytes per Hits Buffer entry (hit record + metadata).
    pub const HIT_ENTRY_BYTES: u64 = 75;
    /// Coordinator allocator logic: 0.273 mm² / 0.215 W at 4 classes with
    /// a 32-entry sort/mux network; scales as `n·log2(n)` in the class
    /// count (comparator tree width).
    pub const COORD_LOGIC_MM2: f64 = 0.273;
    pub const COORD_LOGIC_W: f64 = 0.215;
}

/// One row of the Table II breakdown.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerRow {
    /// Module name ("SUs", "EUs", …).
    pub module: &'static str,
    /// Category within the module ("Logic", "Table SRAM", …).
    pub category: &'static str,
    /// Area in mm².
    pub area_mm2: f64,
    /// Power in watts.
    pub power_w: f64,
}

/// The full area/power breakdown of a configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerBreakdown {
    /// Rows in Table II order.
    pub rows: Vec<PowerRow>,
}

impl PowerBreakdown {
    /// Computes the breakdown for `config`.
    pub fn for_config(config: &NvwaConfig) -> PowerBreakdown {
        let su = config.su_count as u64;
        let classes = config.effective_eu_classes();
        let eus: u64 = classes.iter().map(|c| c.count as u64).sum();
        let pes: u64 = classes.iter().map(|c| c.total_pes() as u64).sum();
        let n_classes = classes.len() as f64;

        // SU table SRAM scales with the pool (512 KB at 128 SUs).
        let su_sram_mib = su as f64 * (0.5 / 128.0);
        // Coordinator buffer: two buffers of `depth` entries.
        let coord_bytes = 2 * config.hits_buffer_depth as u64 * cal::HIT_ENTRY_BYTES;
        // Allocator comparator network: n·log2(n) scaling normalized to the
        // calibrated 4-class point.
        let logic_scale = (n_classes * n_classes.log2().max(0.5)) / (4.0 * 2.0);

        let rows = vec![
            PowerRow {
                module: "SUs",
                category: "Logic",
                area_mm2: LogicBlock::new(su, cal::SU_LOGIC_MM2, cal::SU_LOGIC_W).area_mm2(),
                power_w: LogicBlock::new(su, cal::SU_LOGIC_MM2, cal::SU_LOGIC_W).power_w(),
            },
            PowerRow {
                module: "SUs",
                category: "Table SRAM",
                area_mm2: su_sram_mib * cal::SU_SRAM_MM2_PER_MIB,
                power_w: su_sram_mib * cal::SU_SRAM_W_PER_MIB,
            },
            PowerRow {
                module: "EUs",
                category: "Logic",
                area_mm2: LogicBlock::new(pes, cal::EU_LOGIC_MM2, cal::EU_LOGIC_W).area_mm2(),
                power_w: LogicBlock::new(pes, cal::EU_LOGIC_MM2, cal::EU_LOGIC_W).power_w(),
            },
            PowerRow {
                module: "EUs",
                category: "Table SRAM",
                area_mm2: pes as f64 * cal::EU_SRAM_MIB_PER_PE * cal::EU_SRAM_MM2_PER_MIB,
                power_w: pes as f64 * cal::EU_SRAM_MIB_PER_PE * cal::EU_SRAM_W_PER_MIB,
            },
            PowerRow {
                module: "Seeding Scheduler",
                category: "SPM",
                area_mm2: su as f64 * cal::SEED_SPM_MM2,
                power_w: su as f64 * cal::SEED_SPM_W,
            },
            PowerRow {
                module: "Seeding Scheduler",
                category: "Logic",
                area_mm2: su as f64 * cal::SEED_LOGIC_MM2,
                power_w: su as f64 * cal::SEED_LOGIC_W,
            },
            PowerRow {
                module: "Extension Scheduler",
                category: "Table SRAM",
                area_mm2: eus as f64 * cal::EXT_SRAM_MM2,
                power_w: eus as f64 * cal::EXT_SRAM_W,
            },
            PowerRow {
                module: "Extension Scheduler",
                category: "Logic",
                area_mm2: eus as f64 * cal::EXT_LOGIC_MM2,
                power_w: eus as f64 * cal::EXT_LOGIC_W,
            },
            PowerRow {
                module: "Coordinator",
                category: "SRAM Buffer",
                area_mm2: mib(coord_bytes) * cal::COORD_SRAM_MM2_PER_MIB,
                power_w: mib(coord_bytes) * cal::COORD_SRAM_W_PER_MIB,
            },
            PowerRow {
                module: "Coordinator",
                category: "Logic",
                area_mm2: cal::COORD_LOGIC_MM2 * logic_scale,
                power_w: cal::COORD_LOGIC_W * logic_scale,
            },
        ];
        PowerBreakdown { rows }
    }

    /// Total area in mm².
    pub fn total_area_mm2(&self) -> f64 {
        self.rows.iter().map(|r| r.area_mm2).sum()
    }

    /// Total power in watts (excluding HBM, like the paper's 5.754 W).
    pub fn total_power_w(&self) -> f64 {
        self.rows.iter().map(|r| r.power_w).sum()
    }

    /// Power of the scheduling machinery only (Seeding/Extension Scheduler
    /// + Coordinator): the paper's "only 0.77 W (13.38 %)".
    pub fn scheduler_power_w(&self) -> f64 {
        self.rows
            .iter()
            .filter(|r| r.module != "SUs" && r.module != "EUs")
            .map(|r| r.power_w)
            .sum()
    }

    /// Power of the Coordinator alone (the Fig. 13(b) y-axis).
    pub fn coordinator_power_w(&self) -> f64 {
        self.rows
            .iter()
            .filter(|r| r.module == "Coordinator")
            .map(|r| r.power_w)
            .sum()
    }
}

/// Total power including HBM at the measured average access power.
pub fn total_with_hbm_w(breakdown: &PowerBreakdown, hbm_power_w: f64) -> f64 {
    breakdown.total_power_w() + hbm_power_w
}

fn mib(bytes: u64) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

/// Convenience: an [`SramMacro`] for the SU table SRAM of a pool (used by
/// footprint reports).
pub fn su_table_sram(su_count: u32) -> SramMacro {
    SramMacro::new(
        (su_count as u64) * (512 * 1024 / 128),
        cal::SU_SRAM_MM2_PER_MIB,
        cal::SU_SRAM_W_PER_MIB,
    )
}

/// Convenience roll-up of the whole chip.
pub fn chip_area_power(config: &NvwaConfig) -> AreaPower {
    let b = PowerBreakdown::for_config(config);
    AreaPower::new(b.total_area_mm2(), b.total_power_w())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_reproduces_table_two_totals() {
        let b = PowerBreakdown::for_config(&NvwaConfig::paper());
        // Table II: 27.009 mm², 5.754 W (±2% for the buffer-entry model).
        assert!(
            (b.total_area_mm2() - 27.009).abs() / 27.009 < 0.02,
            "area {}",
            b.total_area_mm2()
        );
        assert!(
            (b.total_power_w() - 5.754).abs() / 5.754 < 0.02,
            "power {}",
            b.total_power_w()
        );
    }

    #[test]
    fn compute_units_dominate() {
        // "The computing units dominate ... 94.15% of the area and 86.61%
        // of the power"; schedulers are ~1.58 mm² and ~0.77 W.
        let b = PowerBreakdown::for_config(&NvwaConfig::paper());
        let sched_w = b.scheduler_power_w();
        assert!((sched_w - 0.77).abs() < 0.03, "scheduler power {sched_w}");
        let compute_area: f64 = b
            .rows
            .iter()
            .filter(|r| r.module == "SUs" || r.module == "EUs")
            .map(|r| r.area_mm2)
            .sum();
        let frac = compute_area / b.total_area_mm2();
        assert!((frac - 0.9415).abs() < 0.01, "compute area fraction {frac}");
    }

    #[test]
    fn coordinator_power_grows_with_buffer_depth() {
        let small = PowerBreakdown::for_config(&NvwaConfig {
            hits_buffer_depth: 128,
            ..NvwaConfig::paper()
        });
        let big = PowerBreakdown::for_config(&NvwaConfig {
            hits_buffer_depth: 8192,
            ..NvwaConfig::paper()
        });
        assert!(big.coordinator_power_w() > small.coordinator_power_w());
    }

    #[test]
    fn allocator_logic_grows_with_class_count() {
        use crate::config::EuClass;
        let two = PowerBreakdown::for_config(&NvwaConfig {
            eu_classes: vec![EuClass::new(32, 45), EuClass::new(128, 11)],
            ..NvwaConfig::paper()
        });
        let sixteen = PowerBreakdown::for_config(&NvwaConfig {
            eu_classes: (0..16).map(|i| EuClass::new(8 << (i / 4), 10)).collect(),
            ..NvwaConfig::paper()
        });
        let logic = |b: &PowerBreakdown| {
            b.rows
                .iter()
                .find(|r| r.module == "Coordinator" && r.category == "Logic")
                .unwrap()
                .power_w
        };
        assert!(logic(&sixteen) > logic(&two));
    }

    #[test]
    fn rows_match_table_two_structure() {
        let b = PowerBreakdown::for_config(&NvwaConfig::paper());
        assert_eq!(b.rows.len(), 10);
        let su_sram = &b.rows[1];
        assert!((su_sram.area_mm2 - 2.16).abs() < 1e-9);
        assert!((su_sram.power_w - 0.71).abs() < 1e-9);
        let eu_sram = &b.rows[3];
        assert!((eu_sram.area_mm2 - 21.15).abs() < 1e-9);
    }

    #[test]
    fn hbm_total_matches_paper() {
        // "When the HBM 1.0 is considered, the total power consumption is
        // 7.685 W" → HBM contributes ~1.93 W at full tilt.
        let b = PowerBreakdown::for_config(&NvwaConfig::paper());
        let total = total_with_hbm_w(&b, 7.685 - 5.754);
        assert!((total - 7.685).abs() < 0.15, "total {total}");
    }
}
