//! GACT tiling (Darwin).
//!
//! Darwin's GACT aligns arbitrarily long sequences with *constant* hardware
//! resources by filling fixed-size tiles and committing the traceback prefix
//! of each tile before sliding the window forward by `tile_size - overlap`.
//! The paper applies NvWa to long reads "by using the iterative scheme of
//! GACT" (Sec. V-F); this module is that scheme.

use crate::cigar::Cigar;
#[cfg(test)]
use crate::cigar::CigarOp;
use crate::scoring::Scoring;
use crate::sw::{extend_align, ExtensionAlignment};

/// GACT tiling parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GactConfig {
    /// Tile edge length (Darwin uses 512 in hardware, 300 in software).
    pub tile_size: usize,
    /// Overlap retained between consecutive tiles.
    pub overlap: usize,
}

impl Default for GactConfig {
    fn default() -> GactConfig {
        GactConfig {
            tile_size: 256,
            overlap: 64,
        }
    }
}

impl GactConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `overlap >= tile_size` or `tile_size == 0`.
    pub fn validate(&self) {
        assert!(self.tile_size > 0, "tile size must be positive");
        assert!(
            self.overlap < self.tile_size,
            "overlap must be smaller than the tile"
        );
    }
}

/// Statistics of a GACT run (tile count drives the long-read EU workload).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GactStats {
    /// Number of tiles filled.
    pub tiles: u64,
    /// Total DP cells filled across tiles.
    pub dp_cells: u64,
}

/// Extends `query` against `target` from the anchored origin using GACT
/// tiling. Returns the committed alignment and tiling statistics.
///
/// The result approximates [`extend_align`] (exact when each tile's optimal
/// path stays within the committed prefix — Darwin's empirical observation)
/// while only ever holding one `tile_size²` matrix.
pub fn gact_extend(
    query: &[u8],
    target: &[u8],
    scoring: &Scoring,
    config: &GactConfig,
) -> (ExtensionAlignment, GactStats) {
    config.validate();
    let mut stats = GactStats::default();
    let mut cigar = Cigar::new();
    let mut q_pos = 0usize;
    let mut t_pos = 0usize;

    loop {
        let q_tile = &query[q_pos..(q_pos + config.tile_size).min(query.len())];
        let t_tile = &target[t_pos..(t_pos + config.tile_size).min(target.len())];
        if q_tile.is_empty() || t_tile.is_empty() {
            break;
        }
        let tile = extend_align(q_tile, t_tile, scoring);
        stats.tiles += 1;
        stats.dp_cells += q_tile.len() as u64 * t_tile.len() as u64;
        if tile.cigar.is_empty() {
            break; // nothing extended in this tile
        }

        let last_tile = q_pos + q_tile.len() >= query.len() || t_pos + t_tile.len() >= target.len();
        if last_tile {
            cigar.concat(&tile.cigar);
            q_pos += tile.query_len;
            t_pos += tile.target_len;
            break;
        }

        // Commit the tile's prefix up to `tile_size - overlap` consumed
        // query bases; the overlap region is re-aligned by the next tile.
        let commit_q = config.tile_size - config.overlap;
        let (committed, dq, dt) = cigar_prefix(&tile.cigar, commit_q);
        if dq == 0 && dt == 0 {
            // The tile alignment never reached the commit horizon; keep what
            // we have and stop (no forward progress possible).
            cigar.concat(&tile.cigar);
            q_pos += tile.query_len;
            t_pos += tile.target_len;
            break;
        }
        cigar.concat(&committed);
        q_pos += dq;
        t_pos += dt;
    }

    let score = cigar.score(scoring);
    (
        ExtensionAlignment {
            score,
            query_len: q_pos,
            target_len: t_pos,
            cigar,
        },
        stats,
    )
}

/// Splits a CIGAR at the point where `max_query` query bases have been
/// consumed; returns the prefix and the (query, target) bases it consumes.
fn cigar_prefix(cigar: &Cigar, max_query: usize) -> (Cigar, usize, usize) {
    let mut out = Cigar::new();
    let mut dq = 0usize;
    let mut dt = 0usize;
    for &(op, len) in cigar.runs() {
        if dq >= max_query {
            break;
        }
        let take = if op.consumes_query() {
            (max_query - dq).min(len as usize) as u32
        } else {
            len
        };
        if take == 0 {
            break;
        }
        out.push(op, take);
        if op.consumes_query() {
            dq += take as usize;
        }
        if op.consumes_target() {
            dt += take as usize;
        }
        if take < len {
            break;
        }
    }
    (out, dq, dt)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rand_codes(len: usize, mut state: u64) -> Vec<u8> {
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) & 0b11) as u8
            })
            .collect()
    }

    fn mutate(seq: &[u8], mut state: u64) -> Vec<u8> {
        let mut out = Vec::with_capacity(seq.len());
        for &c in seq {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = (state >> 33) % 100;
            if r < 3 {
                out.push((c + 1) % 4);
            } else if r < 4 {
                // deletion
            } else if r < 5 {
                out.push(c);
                out.push((c + 2) % 4);
            } else {
                out.push(c);
            }
        }
        out
    }

    #[test]
    fn identical_long_sequences() {
        let s = rand_codes(2000, 1);
        let (a, stats) = gact_extend(&s, &s, &Scoring::bwa_mem(), &GactConfig::default());
        assert_eq!(a.score, 2000);
        assert_eq!(a.cigar.to_string(), "2000=");
        // ceil((2000-256)/192)+1 tiles
        assert!(stats.tiles >= 2000 / 256);
    }

    #[test]
    fn approximates_full_extension_on_noisy_long_reads() {
        let target = rand_codes(3000, 5);
        let query = mutate(&target, 17);
        let scoring = Scoring::bwa_mem();
        let (gact, stats) = gact_extend(&query, &target, &scoring, &GactConfig::default());
        let full = extend_align(&query, &target, &scoring);
        assert!(stats.tiles > 5);
        // GACT is a heuristic; it must reach at least 95% of the optimum on
        // this error profile (Darwin reports near-exact behaviour).
        assert!(
            gact.score as f64 >= full.score as f64 * 0.95,
            "gact {} vs full {}",
            gact.score,
            full.score
        );
        assert_eq!(gact.cigar.score(&scoring), gact.score);
    }

    #[test]
    fn constant_tile_memory_means_tile_cells_bounded() {
        let target = rand_codes(4000, 9);
        let query = mutate(&target, 3);
        let config = GactConfig {
            tile_size: 128,
            overlap: 32,
        };
        let (_, stats) = gact_extend(&query, &target, &Scoring::bwa_mem(), &config);
        // Average cells per tile never exceeds tile_size².
        assert!(stats.dp_cells <= stats.tiles * (128 * 128));
    }

    #[test]
    fn empty_inputs() {
        let (a, stats) = gact_extend(&[], &[0, 1], &Scoring::bwa_mem(), &GactConfig::default());
        assert_eq!(a.score, 0);
        assert_eq!(stats.tiles, 0);
    }

    #[test]
    fn cigar_prefix_splits_runs() {
        let mut c = Cigar::new();
        c.push(CigarOp::Match, 10);
        c.push(CigarOp::Del, 2);
        c.push(CigarOp::Match, 10);
        let (prefix, dq, dt) = cigar_prefix(&c, 15);
        assert_eq!(prefix.to_string(), "10=2D5=");
        assert_eq!(dq, 15);
        assert_eq!(dt, 17);
    }

    #[test]
    #[should_panic(expected = "overlap must be smaller")]
    fn invalid_config_panics() {
        let config = GactConfig {
            tile_size: 64,
            overlap: 64,
        };
        let _ = gact_extend(&[0], &[0], &Scoring::bwa_mem(), &config);
    }
}
