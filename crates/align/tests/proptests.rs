//! Property-based tests on the alignment substrates.

use proptest::prelude::*;

use nvwa_align::banded::banded_extend;
use nvwa_align::cigar::CigarOp;
use nvwa_align::gact::{gact_extend, GactConfig};
use nvwa_align::myers::{best_match, edit_distance, edit_distance_naive};
use nvwa_align::scoring::Scoring;
use nvwa_align::sw::{extend_align, global_align, local_align, naive};

fn codes(max_len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..4, 1..=max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// A full-width band is exactly the unbanded extension.
    #[test]
    fn banded_with_full_band_equals_full(q in codes(30), t in codes(30)) {
        let scoring = Scoring::bwa_mem();
        let full = extend_align(&q, &t, &scoring);
        let band = q.len().max(t.len()) + 1;
        let banded = banded_extend(&q, &t, &scoring, band);
        prop_assert_eq!(banded.score, full.score);
    }

    /// Narrowing the band can only lower the score.
    #[test]
    fn band_narrowing_is_monotone(q in codes(30), t in codes(30)) {
        let scoring = Scoring::bwa_mem();
        let wide = banded_extend(&q, &t, &scoring, 24);
        let narrow = banded_extend(&q, &t, &scoring, 4);
        prop_assert!(narrow.score <= wide.score);
    }

    /// Myers' bit-parallel distance equals the DP oracle.
    #[test]
    fn myers_equals_naive(p in codes(60), t in codes(80)) {
        prop_assert_eq!(edit_distance(&p, &t), edit_distance_naive(&p, &t));
    }

    /// Semi-global never reports more edits than global, and the distance
    /// is bounded by the pattern length.
    #[test]
    fn semiglobal_bounds(p in codes(50), t in codes(80)) {
        let global = edit_distance(&p, &t);
        let semi = best_match(&p, &t);
        prop_assert!(semi.distance <= global.max(p.len() as u32));
        prop_assert!(semi.distance <= p.len() as u32);
        prop_assert!(semi.target_end <= t.len());
    }

    /// GACT's committed transcript is always internally consistent and its
    /// consumed spans never exceed the inputs.
    #[test]
    fn gact_consistency(q in codes(600), t in codes(600)) {
        let scoring = Scoring::bwa_mem();
        let config = GactConfig { tile_size: 96, overlap: 24 };
        let (a, stats) = gact_extend(&q, &t, &scoring, &config);
        prop_assert_eq!(a.cigar.score(&scoring), a.score);
        prop_assert_eq!(a.cigar.query_len(), a.query_len);
        prop_assert_eq!(a.cigar.target_len(), a.target_len);
        prop_assert!(a.query_len <= q.len());
        prop_assert!(a.target_len <= t.len());
        prop_assert!(stats.dp_cells <= stats.tiles.max(1) * (96 * 96));
    }

    /// Local alignment is symmetric up to swapping insertion/deletion
    /// roles: score(q, t) == score(t, q).
    #[test]
    fn local_alignment_is_symmetric(q in codes(25), t in codes(25)) {
        let scoring = Scoring::bwa_mem();
        prop_assert_eq!(
            local_align(&q, &t, &scoring).score,
            local_align(&t, &q, &scoring).score
        );
    }

    /// Appending characters to the target never lowers the local score.
    #[test]
    fn local_score_monotone_in_target(q in codes(20), t in codes(20), extra in codes(5)) {
        let scoring = Scoring::bwa_mem();
        let base = local_align(&q, &t, &scoring).score;
        let mut longer = t.clone();
        longer.extend_from_slice(&extra);
        prop_assert!(local_align(&q, &longer, &scoring).score >= base);
    }

    /// The optimized rolling-row kernel is bit-identical to the retained
    /// reference implementation across all three entry points — scores,
    /// spans and tracebacks, not just scores.
    #[test]
    fn optimized_kernel_equals_naive(q in codes(40), t in codes(40)) {
        let scoring = Scoring::bwa_mem();
        prop_assert_eq!(
            local_align(&q, &t, &scoring),
            naive::local_align(&q, &t, &scoring)
        );
        prop_assert_eq!(
            extend_align(&q, &t, &scoring),
            naive::extend_align(&q, &t, &scoring)
        );
        prop_assert_eq!(
            global_align(&q, &t, &scoring),
            naive::global_align(&q, &t, &scoring)
        );
    }

    /// Same equivalence under a non-default scoring scheme.
    #[test]
    fn optimized_kernel_equals_naive_alt_scoring(q in codes(30), t in codes(30)) {
        let scoring = Scoring::new(2, 3, 4, 1);
        prop_assert_eq!(
            local_align(&q, &t, &scoring),
            naive::local_align(&q, &t, &scoring)
        );
        prop_assert_eq!(
            extend_align(&q, &t, &scoring),
            naive::extend_align(&q, &t, &scoring)
        );
    }

    /// The traceback's op usage matches the sequences: Match ops only on
    /// equal bases, Subst only on unequal.
    #[test]
    fn traceback_ops_match_bases(q in codes(25), t in codes(25)) {
        let scoring = Scoring::bwa_mem();
        let a = local_align(&q, &t, &scoring);
        let (mut qi, mut tj) = (a.query_start, a.target_start);
        for &(op, len) in a.cigar.runs() {
            for _ in 0..len {
                match op {
                    CigarOp::Match => {
                        prop_assert_eq!(q[qi], t[tj]);
                        qi += 1;
                        tj += 1;
                    }
                    CigarOp::Subst => {
                        prop_assert_ne!(q[qi], t[tj]);
                        qi += 1;
                        tj += 1;
                    }
                    CigarOp::Ins => qi += 1,
                    CigarOp::Del => tj += 1,
                }
            }
        }
        prop_assert_eq!((qi, tj), (a.query_end, a.target_end));
    }
}
