//! End-to-end tests of the serving subsystem over real sockets.
//!
//! The acceptance bar (ISSUE PR3): a closed-loop run of ≥10k reads
//! completes with zero lost and zero duplicated responses, and every
//! alignment is bit-identical to the offline `nvwa-align` result for the
//! same read — regardless of batch size or worker count. Backpressure
//! sheds explicitly, deadlines expire explicitly, shutdown drains, and
//! the hardware-in-the-loop backend reports cycles without perturbing
//! results.

use std::collections::HashMap;
use std::sync::{Arc, OnceLock};
use std::time::Duration;

use nvwa::align::pipeline::{AlignerConfig, Alignment, ReferenceIndex, SoftwareAligner};
use nvwa::genome::{ReadSimParams, ReadSimulator, ReferenceGenome, ReferenceParams};
use nvwa::serve::loadgen::{self, ref_params, ArrivalMode, LoadgenConfig};
use nvwa::serve::{BackendKind, BatcherConfig, Server, ServerConfig};
use nvwa::telemetry::snapshot::{validate_loadgen_report, validate_serve_snapshot};

const REF_LEN: usize = 60_000;
const REF_SEED: u64 = 5;
const READ_SEED: u64 = 11;
const CORPUS: usize = 10_000;

struct Fixture {
    index: Arc<ReferenceIndex>,
    reads: Vec<Vec<u8>>,
    /// Offline ground truth: request id → the offline aligner's result.
    offline: HashMap<u64, Option<Alignment>>,
}

fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let params: ReferenceParams = ref_params(REF_LEN);
        let genome = ReferenceGenome::synthesize(&params, REF_SEED);
        let index = Arc::new(ReferenceIndex::build(&genome, 32));
        let mut sim = ReadSimulator::new(&genome, ReadSimParams::illumina_101(), READ_SEED);
        let reads: Vec<Vec<u8>> = sim
            .simulate_reads(CORPUS)
            .into_iter()
            .map(|r| r.seq.codes().to_vec())
            .collect();
        let aligner = SoftwareAligner::new(&index, AlignerConfig::default());
        let offline = reads
            .iter()
            .enumerate()
            .map(|(i, codes)| (i as u64, aligner.align_codes(i as u64, codes).alignment))
            .collect();
        Fixture {
            index,
            reads,
            offline,
        }
    })
}

fn start(config: ServerConfig) -> Server {
    Server::start(Arc::clone(&fixture().index), config).expect("server start")
}

/// Asserts every collected `ok` response matches the offline aligner
/// bit for bit.
fn assert_bit_identical(report: &loadgen::LoadReport) {
    assert!(!report.responses.is_empty(), "collect_responses was on");
    for (id, resp) in &report.responses {
        let expected = fixture().offline.get(id).expect("known read id");
        match (&resp.alignment, expected) {
            (None, None) => {}
            (Some(wire), Some(offline)) => {
                assert_eq!(wire.pos, offline.flat_pos, "read {id} pos");
                assert_eq!(wire.is_rc, offline.is_rc, "read {id} strand");
                assert_eq!(wire.score, offline.score, "read {id} score");
                assert_eq!(wire.cigar, offline.cigar.to_string(), "read {id} cigar");
                assert_eq!(wire.mapq, offline.mapq, "read {id} mapq");
            }
            (got, want) => panic!("read {id}: served {got:?} vs offline {want:?}"),
        }
    }
}

#[test]
fn closed_loop_10k_reads_is_lossless_and_bit_identical() {
    let fx = fixture();
    let server = start(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let addr = server.local_addr().to_string();
    let report = loadgen::run(
        &addr,
        &fx.reads,
        &LoadgenConfig {
            connections: 3,
            mode: ArrivalMode::Closed { window: 64 },
            collect_responses: true,
            ..LoadgenConfig::default()
        },
    )
    .expect("loadgen run");
    let metrics = server.shutdown();

    assert_eq!(report.sent, CORPUS as u64);
    assert_eq!(report.received, CORPUS as u64);
    assert_eq!(report.lost, 0, "no request may vanish");
    assert_eq!(report.duplicates, 0, "no request may be answered twice");
    assert_eq!(report.ok, CORPUS as u64, "unloaded server sheds nothing");
    assert!(
        report.mapped as f64 >= 0.9 * CORPUS as f64,
        "simulated reads should map ({}/{CORPUS})",
        report.mapped
    );
    assert_bit_identical(&report);
    validate_loadgen_report(&report.to_json()).expect("report schema");
    assert_eq!(metrics.counter("serve.responses_ok"), CORPUS as u64);
    assert!(metrics.counter("serve.batches_formed") > 0);
}

#[test]
fn results_are_invariant_across_batch_size_and_worker_count() {
    let fx = fixture();
    let subset = &fx.reads[..1_500];
    let shapes = [(1usize, 4usize), (3, 64)];
    let mut collected: Vec<HashMap<u64, Option<String>>> = Vec::new();
    for (workers, max_batch) in shapes {
        let server = start(ServerConfig {
            workers,
            batch: BatcherConfig {
                max_batch,
                ..BatcherConfig::default()
            },
            ..ServerConfig::default()
        });
        let addr = server.local_addr().to_string();
        let report = loadgen::run(
            &addr,
            subset,
            &LoadgenConfig {
                connections: 2,
                mode: ArrivalMode::Closed { window: 32 },
                collect_responses: true,
                ..LoadgenConfig::default()
            },
        )
        .expect("loadgen run");
        server.shutdown();
        assert!(report.is_lossless());
        assert_eq!(report.ok, subset.len() as u64);
        assert_bit_identical(&report);
        collected.push(
            report
                .responses
                .iter()
                .map(|(id, r)| (*id, r.alignment.as_ref().map(|a| format!("{a:?}"))))
                .collect(),
        );
    }
    assert_eq!(
        collected[0], collected[1],
        "batch size and worker count must not change any alignment"
    );
}

#[test]
fn overload_sheds_explicitly_and_conserves_responses() {
    let fx = fixture();
    // A tiny queue and a slow single worker: the admission queue must
    // fill and the edge must answer `shed` — never buffer unboundedly,
    // never drop silently.
    let server = start(ServerConfig {
        queue_capacity: 8,
        workers: 1,
        batch: BatcherConfig {
            max_batch: 4,
            ..BatcherConfig::default()
        },
        worker_delay: Some(Duration::from_millis(30)),
        ..ServerConfig::default()
    });
    let addr = server.local_addr().to_string();
    let report = loadgen::run(
        &addr,
        &fx.reads[..300],
        &LoadgenConfig {
            connections: 2,
            mode: ArrivalMode::Open {
                rate_rps: 5_000.0,
                burst: 20,
            },
            ..LoadgenConfig::default()
        },
    )
    .expect("loadgen run");
    let metrics = server.shutdown();

    assert_eq!(report.lost, 0, "shed requests still get responses");
    assert_eq!(report.duplicates, 0);
    assert_eq!(report.received, report.sent);
    assert!(report.shed > 0, "overload must shed ({report:?})");
    assert_eq!(report.ok + report.shed + report.deadline, report.received);
    assert_eq!(metrics.counter("serve.requests_shed"), report.shed);
    // The queue-depth gauge never exceeded the configured bound.
    let meta = nvwa::telemetry::SnapshotMeta {
        host_threads: 1,
        git_rev: None,
    };
    let doc = metrics.snapshot(&meta);
    let max_depth = doc
        .get("gauges")
        .and_then(|g| g.get("serve.queue_depth_max"))
        .and_then(nvwa::telemetry::JsonValue::as_num)
        .unwrap();
    assert!(max_depth <= 8.0, "admission depth bounded, saw {max_depth}");
}

#[test]
fn queued_requests_past_their_deadline_get_deadline_responses() {
    let fx = fixture();
    let server = start(ServerConfig {
        workers: 1,
        batch: BatcherConfig {
            max_batch: 8,
            ..BatcherConfig::default()
        },
        worker_delay: Some(Duration::from_millis(80)),
        ..ServerConfig::default()
    });
    let addr = server.local_addr().to_string();
    let report = loadgen::run(
        &addr,
        &fx.reads[..120],
        &LoadgenConfig {
            connections: 1,
            mode: ArrivalMode::Closed { window: 120 },
            deadline_ms: Some(25),
            ..LoadgenConfig::default()
        },
    )
    .expect("loadgen run");
    let metrics = server.shutdown();

    assert!(report.is_lossless());
    assert_eq!(report.received, report.sent);
    assert!(
        report.deadline > 0,
        "an 80ms/batch worker must blow 25ms deadlines ({report:?})"
    );
    assert!(report.ok > 0, "the first batches still make it");
    assert_eq!(metrics.counter("serve.deadline_expired"), report.deadline);
}

#[test]
fn shutdown_drains_in_flight_batches() {
    let fx = fixture();
    let server = start(ServerConfig {
        workers: 1,
        worker_delay: Some(Duration::from_millis(10)),
        ..ServerConfig::default()
    });
    let addr = server.local_addr().to_string();

    // Fire 200 requests and shut down while batches are still in flight.
    let reads = &fx.reads[..200];
    let handle = {
        let addr = addr.clone();
        let reads: Vec<Vec<u8>> = reads.to_vec();
        std::thread::spawn(move || {
            loadgen::run(
                &addr,
                &reads,
                &LoadgenConfig {
                    connections: 1,
                    mode: ArrivalMode::Closed { window: 200 },
                    ..LoadgenConfig::default()
                },
            )
            .expect("loadgen run")
        })
    };
    std::thread::sleep(Duration::from_millis(40));
    let metrics = server.shutdown();
    let report = handle.join().expect("loadgen thread");

    // Conservation across a drain: every request sent before the socket
    // closed was answered exactly once — ok for everything admitted,
    // shed-with-"draining" for anything that arrived during the drain.
    assert_eq!(report.lost, 0, "drain must answer everything ({report:?})");
    assert_eq!(report.duplicates, 0);
    assert_eq!(report.received, report.sent);
    assert_eq!(report.ok + report.shed, report.received);
    assert!(report.ok > 0, "in-flight batches completed");
    assert_eq!(metrics.counter("serve.responses_ok"), report.ok);
}

#[test]
fn hardware_in_the_loop_reports_cycles_and_identical_alignments() {
    let fx = fixture();
    let server = start(ServerConfig {
        workers: 1,
        backend: BackendKind::hil_default(),
        ..ServerConfig::default()
    });
    let addr = server.local_addr().to_string();
    let report = loadgen::run(
        &addr,
        &fx.reads[..200],
        &LoadgenConfig {
            connections: 1,
            mode: ArrivalMode::Closed { window: 32 },
            collect_responses: true,
            ..LoadgenConfig::default()
        },
    )
    .expect("loadgen run");
    let metrics = server.shutdown();

    assert!(report.is_lossless());
    assert_eq!(report.ok, 200);
    assert_bit_identical(&report);
    assert!(
        report.responses.values().all(|r| r.sim_cycles.is_some()),
        "every HIL response carries the batch's simulated cycles"
    );
    assert!(metrics.counter("serve.sim_cycles_total") > 0);
}

#[test]
fn stats_request_returns_a_valid_serve_snapshot() {
    let fx = fixture();
    let server = start(ServerConfig::default());
    let addr = server.local_addr().to_string();
    let report = loadgen::run(
        &addr,
        &fx.reads[..64],
        &LoadgenConfig {
            connections: 1,
            mode: ArrivalMode::Closed { window: 16 },
            ..LoadgenConfig::default()
        },
    )
    .expect("loadgen run");
    assert!(report.is_lossless());
    let doc = loadgen::fetch_stats(&addr).expect("stats");
    validate_serve_snapshot(&doc).expect("serve snapshot schema");
    // Shutdown via the protocol, as `nvwa-loadgen --shutdown` would.
    loadgen::send_shutdown(&addr).expect("shutdown request");
    assert!(server.shutdown_requested());
    server.shutdown();
}
