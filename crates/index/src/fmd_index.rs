//! Bidirectional FMD-index.
//!
//! BWA-MEM's SMEM search requires extending a match in *both* directions.
//! The FMD-index achieves this with a single FM-index over the text
//! `T = S · revcomp(S)`: because `T` is its own reverse complement, the
//! suffix-array interval of a pattern `W` and the interval of `revcomp(W)`
//! always have the same size, and a backward extension of one is a forward
//! extension of the other. A bi-interval tracks both.

use crate::fm_index::FmIndex;
use crate::trace::{MemAddr, TraceSink};

/// A bidirectional suffix-array interval.
///
/// `k` is the start of the interval of the current pattern `W`, `l` the start
/// of the interval of `revcomp(W)`, and `s` the (shared) size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BiInterval {
    /// Start of the interval of `W`.
    pub k: u64,
    /// Start of the interval of `revcomp(W)`.
    pub l: u64,
    /// Interval size (number of occurrences of `W` in `T`, counting both
    /// strands of `S`).
    pub s: u64,
}

impl BiInterval {
    /// Whether the interval is empty.
    pub fn is_empty(&self) -> bool {
        self.s == 0
    }

    /// The bi-interval of `revcomp(W)` (swap directions).
    pub fn swapped(&self) -> BiInterval {
        BiInterval {
            k: self.l,
            l: self.k,
            s: self.s,
        }
    }
}

/// A strand-resolved occurrence of a pattern on the forward reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StrandHit {
    /// 0-based position on the forward reference sequence.
    pub pos: usize,
    /// `true` if the *reverse complement* of the query matches at `pos`.
    pub is_rc: bool,
}

/// Bidirectional FM-index over `S · revcomp(S)`.
///
/// # Examples
///
/// ```
/// use nvwa_index::FmdIndex;
/// use nvwa_index::NullTrace;
/// let fmd = FmdIndex::from_forward(&[0, 1, 2, 3, 0, 0, 1]); // ACGTAAC
/// let bi = fmd.search(&[0, 1], &mut NullTrace).unwrap(); // "AC"
/// assert_eq!(bi.s, 3); // 2 forward occurrences + 1 "GT" on the reverse strand
/// ```
#[derive(Debug, Clone)]
pub struct FmdIndex {
    fm: FmIndex,
    forward_len: usize,
}

impl FmdIndex {
    /// Builds the FMD-index of a forward text (2-bit codes).
    ///
    /// # Panics
    ///
    /// Panics if any code is ≥ 4.
    pub fn from_forward(forward: &[u8]) -> FmdIndex {
        let text = FmdIndex::doubled_text(forward);
        FmdIndex {
            fm: FmIndex::from_text(&text),
            forward_len: forward.len(),
        }
    }

    /// Assembles an FMD-index from a prebuilt FM-index.
    ///
    /// The caller must guarantee that `fm` indexes exactly
    /// `forward · revcomp(forward)` for a forward text of length
    /// `forward_len`; this exists so a shared suffix array can also feed a
    /// [`crate::sampled_sa::SampledSa`] without being rebuilt.
    ///
    /// # Panics
    ///
    /// Panics if `fm.text_len() != 2 * forward_len`.
    pub fn from_parts(fm: FmIndex, forward_len: usize) -> FmdIndex {
        assert_eq!(
            fm.text_len(),
            2 * forward_len,
            "FM-index must cover the doubled text"
        );
        FmdIndex { fm, forward_len }
    }

    /// Builds the doubled text `forward · revcomp(forward)` that an FMD
    /// index is constructed over.
    pub fn doubled_text(forward: &[u8]) -> Vec<u8> {
        let mut text = Vec::with_capacity(forward.len() * 2);
        text.extend_from_slice(forward);
        text.extend(forward.iter().rev().map(|&c| 3 - c));
        text
    }

    /// Length of the forward text.
    pub fn forward_len(&self) -> usize {
        self.forward_len
    }

    /// The doubled text (forward + reverse complement), as indexed.
    pub fn doubled_text_len(&self) -> usize {
        self.forward_len * 2
    }

    /// The underlying unidirectional FM-index.
    pub fn fm(&self) -> &FmIndex {
        &self.fm
    }

    /// The bi-interval of a single base.
    pub fn base_interval(&self, c: u8) -> BiInterval {
        BiInterval {
            k: self.fm.c_of(c),
            l: self.fm.c_of(3 - c),
            s: self.fm.c_end(c) - self.fm.c_of(c),
        }
    }

    /// occ for all four bases at rank `i`, reading one checkpoint block.
    fn occ4<T: TraceSink>(&self, i: u64, trace: &mut T) -> [u64; 4] {
        // The four counters live in the same checkpoint block: the hardware
        // reads it once. Record one access here and use untraced reads.
        let mut first = TraceOnce {
            inner: trace,
            done: false,
        };
        let mut out = [0u64; 4];
        for c in 0..4u8 {
            out[c as usize] = self.fm.occ(c, i, &mut first);
        }
        out
    }

    /// Extends `W` to `cW` for every possible `c`, returning the four
    /// candidate bi-intervals indexed by base code.
    ///
    /// Two checkpoint-block reads are recorded on `trace` (interval start and
    /// end boundaries), matching the hardware cost of one extension step.
    pub fn backward_ext_all<T: TraceSink>(&self, ik: BiInterval, trace: &mut T) -> [BiInterval; 4] {
        let tk = self.occ4(ik.k, trace);
        let tl = self.occ4(ik.k + ik.s, trace);
        let mut cnt = [0u64; 4];
        for c in 0..4 {
            cnt[c] = tl[c] - tk[c];
        }
        let primary = self.fm.primary() as u64;
        let sentinel_in_window = u64::from(ik.k <= primary && primary < ik.k + ik.s);
        // The l-intervals tile the revcomp side in complement order: the
        // sentinel first, then T, G, C, A.
        let l3 = ik.l + sentinel_in_window;
        let l2 = l3 + cnt[3];
        let l1 = l2 + cnt[2];
        let l0 = l1 + cnt[1];
        let ls = [l0, l1, l2, l3];
        std::array::from_fn(|c| BiInterval {
            k: self.fm.c_of(c as u8) + tk[c],
            l: ls[c],
            s: cnt[c],
        })
    }

    /// Extends `W` to `cW` (backward extension by one base).
    pub fn backward_ext<T: TraceSink>(&self, ik: BiInterval, c: u8, trace: &mut T) -> BiInterval {
        self.backward_ext_all(ik, trace)[c as usize]
    }

    /// Extends `W` to `Wc` (forward extension by one base), using the FMD
    /// symmetry: forward-extend `W` ⇔ backward-extend `revcomp(W)` by the
    /// complement base.
    pub fn forward_ext<T: TraceSink>(&self, ik: BiInterval, c: u8, trace: &mut T) -> BiInterval {
        self.backward_ext(ik.swapped(), 3 - c, trace).swapped()
    }

    /// Searches `pattern` (backward), returning its bi-interval or `None`.
    pub fn search<T: TraceSink>(&self, pattern: &[u8], trace: &mut T) -> Option<BiInterval> {
        let (&last, rest) = pattern.split_last()?;
        let mut ik = self.base_interval(last);
        for &c in rest.iter().rev() {
            if ik.is_empty() {
                return None;
            }
            ik = self.backward_ext(ik, c, trace);
        }
        if ik.is_empty() {
            None
        } else {
            Some(ik)
        }
    }

    /// Maps an occurrence position in the doubled text to a strand-resolved
    /// hit on the forward reference, given the pattern length.
    ///
    /// Returns `None` for occurrences spanning the forward/reverse seam
    /// (an artifact of the doubled text, not a real match).
    pub fn resolve_hit(&self, doubled_pos: usize, pattern_len: usize) -> Option<StrandHit> {
        let n = self.forward_len;
        if doubled_pos + pattern_len <= n {
            Some(StrandHit {
                pos: doubled_pos,
                is_rc: false,
            })
        } else if doubled_pos >= n {
            let pos = 2 * n - doubled_pos - pattern_len;
            Some(StrandHit { pos, is_rc: true })
        } else {
            None
        }
    }
}

/// A trace adapter that forwards only the first access (used to merge the
/// four per-base occ reads of a block into one recorded access).
struct TraceOnce<'a, T: TraceSink> {
    inner: &'a mut T,
    done: bool,
}

impl<T: TraceSink> TraceSink for TraceOnce<'_, T> {
    fn record(&mut self, addr: MemAddr) {
        if !self.done {
            self.inner.record(addr);
            self.done = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CountTrace, NullTrace};

    fn rand_codes(len: usize, mut state: u64) -> Vec<u8> {
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) & 0b11) as u8
            })
            .collect()
    }

    /// Counts occurrences of `pattern` in the doubled text `S·revcomp(S)` —
    /// exactly what the FMD interval size reports (including the rare
    /// seam-spanning artifacts that `resolve_hit` later filters out).
    fn naive_two_strand_count(forward: &[u8], pattern: &[u8]) -> u64 {
        let mut doubled = forward.to_vec();
        doubled.extend(forward.iter().rev().map(|&c| 3 - c));
        if pattern.is_empty() || pattern.len() > doubled.len() {
            return 0;
        }
        doubled
            .windows(pattern.len())
            .filter(|w| *w == pattern)
            .count() as u64
    }

    #[test]
    fn bi_interval_counts_both_strands() {
        let forward = rand_codes(400, 11);
        let fmd = FmdIndex::from_forward(&forward);
        for plen in [1usize, 2, 4, 7, 12] {
            for start in (0..forward.len() - plen).step_by(41) {
                let pattern = &forward[start..start + plen];
                let expected = naive_two_strand_count(&forward, pattern);
                let got = fmd
                    .search(pattern, &mut NullTrace)
                    .map(|b| b.s)
                    .unwrap_or(0);
                assert_eq!(got, expected, "pattern at {start} len {plen}");
            }
        }
    }

    #[test]
    fn forward_and_backward_extension_agree() {
        // Building the interval of a pattern left-to-right (forward_ext) must
        // equal building it right-to-left (backward_ext).
        let forward = rand_codes(300, 23);
        let fmd = FmdIndex::from_forward(&forward);
        for start in (0..forward.len() - 8).step_by(29) {
            let pattern = &forward[start..start + 8];
            let back = fmd.search(pattern, &mut NullTrace);
            let mut fwd = fmd.base_interval(pattern[0]);
            for &c in &pattern[1..] {
                fwd = fmd.forward_ext(fwd, c, &mut NullTrace);
            }
            assert_eq!(back, Some(fwd), "pattern at {start}");
        }
    }

    #[test]
    fn swapped_interval_matches_revcomp_search() {
        let forward = rand_codes(300, 5);
        let fmd = FmdIndex::from_forward(&forward);
        let pattern = &forward[40..52];
        let rc: Vec<u8> = pattern.iter().rev().map(|&c| 3 - c).collect();
        let a = fmd.search(pattern, &mut NullTrace).unwrap();
        let b = fmd.search(&rc, &mut NullTrace).unwrap();
        assert_eq!(a.swapped(), b);
    }

    #[test]
    fn extension_traces_two_block_reads() {
        let forward = rand_codes(300, 9);
        let fmd = FmdIndex::from_forward(&forward);
        let ik = fmd.base_interval(2);
        let mut trace = CountTrace::default();
        let _ = fmd.backward_ext_all(ik, &mut trace);
        assert_eq!(trace.0, 2);
    }

    #[test]
    fn resolve_hit_maps_strands() {
        let fmd = FmdIndex::from_forward(&[0, 1, 2, 3, 0, 1]); // n = 6
        assert_eq!(
            fmd.resolve_hit(2, 3),
            Some(StrandHit {
                pos: 2,
                is_rc: false
            })
        );
        // Doubled position 7 with len 3 lies fully in the RC half:
        // maps to forward pos 2*6 - 7 - 3 = 2.
        assert_eq!(
            fmd.resolve_hit(7, 3),
            Some(StrandHit {
                pos: 2,
                is_rc: true
            })
        );
        // Position 5 with len 3 spans the seam.
        assert_eq!(fmd.resolve_hit(5, 3), None);
    }

    #[test]
    fn base_interval_sizes_are_symmetric() {
        let forward = rand_codes(500, 77);
        let fmd = FmdIndex::from_forward(&forward);
        for c in 0..4u8 {
            let a = fmd.base_interval(c);
            let b = fmd.base_interval(3 - c);
            assert_eq!(a.s, b.s, "base {c} vs complement");
            assert_eq!(a.l, b.k);
        }
    }
}
