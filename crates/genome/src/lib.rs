//! Sequence primitives, synthetic reference genomes and read simulation.
//!
//! This crate provides the genomics *data substrate* for the NvWa
//! reproduction. The paper evaluates on GRCh38 with NA12878 reads and
//! DWGSIM-simulated reads for five additional species; neither the reference
//! nor the read sets can be shipped here, so this crate synthesizes
//! statistically equivalent inputs:
//!
//! * [`base`] / [`sequence`] — the DNA alphabet and 2-bit packed sequences.
//! * [`reference`] — synthetic reference genomes with repeat families and GC
//!   bias, so that seeding produces the multi-hit, variable-length seed
//!   structure that drives the paper's *diversity problem*.
//! * [`species`] — profiles for the six genomes of Fig. 14.
//! * [`reads`] — a DWGSIM-like read simulator (substitutions + indels) for
//!   short (101 bp) and long (≥ 1 kbp) reads.
//! * [`fasta`] — minimal FASTA/FASTQ serialization for the examples.
//! * [`distribution`] — histogram helpers used to derive hit-length
//!   distributions (input to the Hybrid Units Strategy, Formula 5).
//!
//! # Examples
//!
//! ```
//! use nvwa_genome::reference::{ReferenceGenome, ReferenceParams};
//! use nvwa_genome::reads::{ReadSimulator, ReadSimParams};
//!
//! let genome = ReferenceGenome::synthesize(&ReferenceParams::small_test(), 7);
//! let mut sim = ReadSimulator::new(&genome, ReadSimParams::illumina_101(), 42);
//! let read = sim.simulate_read();
//! assert_eq!(read.seq.len(), 101);
//! ```

pub mod base;
pub mod distribution;
pub mod fasta;
pub mod reads;
pub mod reference;
pub mod sequence;
pub mod species;

pub use base::Base;
pub use reads::{Read, ReadSimParams, ReadSimulator};
pub use reference::{ReferenceGenome, ReferenceParams};
pub use sequence::DnaSeq;
