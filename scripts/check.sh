#!/usr/bin/env sh
# Repo gate: formatting, lints, and the tier-1 build+test suite.
# Run from the repository root: ./scripts/check.sh
set -eu

cargo fmt --all -- --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q
