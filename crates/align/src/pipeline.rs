//! The end-to-end software aligner (BWA-MEM-style seed-and-extend).
//!
//! This is simultaneously:
//!
//! 1. the functional reference the accelerator must match bit-for-bit
//!    ("faithful to the standard read alignment software ... no loss of
//!    accuracy", Sec. I), and
//! 2. the *workload generator* for the execution-driven hardware simulation:
//!    every read's alignment produces a [`ReadProfile`] containing the
//!    FM-index memory-access trace (seeding-unit workload) and the list of
//!    [`HitTask`]s with their DP dimensions (extension-unit workload).

use std::sync::Arc;

use nvwa_genome::reads::Read;
use nvwa_genome::reference::ReferenceGenome;
use nvwa_index::fmd_index::{FmdIndex, PrefixLut};
use nvwa_index::sampled_sa::SampledSa;
use nvwa_index::smem::{collect_smems_into, Smem, SmemConfig, SmemScratch};
use nvwa_index::suffix_array::build_suffix_array;
use nvwa_index::trace::{MemAddr, NullTrace, TraceSink, VecTrace};
use nvwa_index::{bwt::Bwt, fm_index::FmIndex};

use crate::banded::banded_extend_with;
use crate::chain::{chain_seeds, Chain, ChainConfig, Seed};
use crate::cigar::{Cigar, CigarOp};
use crate::kernel::{bitparallel_extend, bitparallel_global, KernelPolicy};
use crate::myers::MyersScratch;
use crate::scoring::Scoring;
use crate::sw::{global_align_with, DpScratch, ExtensionAlignment};

/// A reference genome plus the search structures built over it.
#[derive(Debug)]
pub struct ReferenceIndex {
    flat: Arc<[u8]>,
    fmd: FmdIndex,
    ssa: SampledSa,
}

impl ReferenceIndex {
    /// Builds the FMD-index and sampled SA over a genome's flattened
    /// sequence (one suffix-array construction, shared by both).
    pub fn build(genome: &ReferenceGenome, sa_rate: u32) -> ReferenceIndex {
        ReferenceIndex::from_codes(genome.flat().codes(), sa_rate)
    }

    /// Builds the index directly from forward codes. Accepts anything that
    /// converts into a shared `Arc<[u8]>` (`Vec<u8>`, `&[u8]`, an existing
    /// `Arc`), so callers that already hold the codes share them instead of
    /// copying.
    ///
    /// Also builds the k-mer prefix LUT ([`PrefixLut::DEFAULT_K`], clamped
    /// to the text size) used by the software fast path.
    ///
    /// # Panics
    ///
    /// Panics if `codes` is empty or `sa_rate == 0`.
    pub fn from_codes(codes: impl Into<Arc<[u8]>>, sa_rate: u32) -> ReferenceIndex {
        let codes: Arc<[u8]> = codes.into();
        assert!(!codes.is_empty(), "reference must be non-empty");
        let doubled = FmdIndex::doubled_text(&codes);
        let sa = build_suffix_array(&doubled);
        let bwt = Bwt::from_text_and_sa(&doubled, &sa);
        let fm = FmIndex::from_bwt(bwt);
        let ssa = SampledSa::from_sa(&sa, sa_rate);
        let mut fmd = FmdIndex::from_parts(fm, doubled.len() / 2);
        fmd.build_prefix_lut(PrefixLut::DEFAULT_K);
        ReferenceIndex {
            flat: codes,
            fmd,
            ssa,
        }
    }

    /// The forward reference codes.
    pub fn flat(&self) -> &[u8] {
        &self.flat
    }

    /// A shared handle to the forward reference codes (cheap clone).
    pub fn flat_shared(&self) -> Arc<[u8]> {
        Arc::clone(&self.flat)
    }

    /// The FMD-index.
    pub fn fmd(&self) -> &FmdIndex {
        &self.fmd
    }

    /// The sampled suffix array.
    pub fn sampled_sa(&self) -> &SampledSa {
        &self.ssa
    }

    /// Approximate heap footprint in bytes: flat codes + FMD checkpoints
    /// and prefix LUT + sampled SA. The multi-tenant registry budgets
    /// tenants by this number, so it must be build-deterministic (it is:
    /// every component's size is a pure function of the input length).
    pub fn heap_bytes(&self) -> usize {
        self.flat.len() + self.fmd.footprint_bytes() + self.ssa.footprint_bytes()
    }
}

/// Aligner parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlignerConfig {
    /// SMEM search parameters.
    pub smem: SmemConfig,
    /// Scoring scheme.
    pub scoring: Scoring,
    /// Skip SMEMs with more reference occurrences than this (repeat filter,
    /// BWA's `max_occ`).
    pub max_smem_occ: u64,
    /// Locate at most this many positions per SMEM.
    pub max_hits_per_smem: usize,
    /// Chaining parameters.
    pub chain: ChainConfig,
    /// Band half-width for flank extension windows.
    pub band: usize,
    /// Extend at most this many top chains.
    pub max_chains_extended: usize,
    /// Extension-kernel selection (bit-parallel banded edit vs banded SW).
    /// Only the final alignment's score/cigar can differ between kernels;
    /// hit tasks and DP-cell accounting model the hardware EU workload and
    /// stay identical.
    pub kernel: KernelPolicy,
}

impl Default for AlignerConfig {
    fn default() -> AlignerConfig {
        AlignerConfig {
            smem: SmemConfig::default(),
            scoring: Scoring::bwa_mem(),
            max_smem_occ: 128,
            max_hits_per_smem: 16,
            chain: ChainConfig::default(),
            band: 32,
            max_chains_extended: 3,
            kernel: KernelPolicy::default(),
        }
    }
}

/// Reusable per-worker scratch for the whole alignment pipeline.
///
/// Holds every buffer the per-read hot path would otherwise allocate fresh:
/// the SMEM search scratch (with its occ-block cache), the SMEM/seed vectors,
/// the reverse-complement and candidate buffers, and the DP scratch used by
/// chain extension. One instance per worker thread; reusing it across reads
/// makes the steady-state pipeline allocation-free. Results are bit-identical
/// to the allocating path.
#[derive(Debug, Default)]
pub struct AlignScratch {
    smem: SmemScratch,
    smems: Vec<Smem>,
    seeds: Vec<Seed>,
    rc_codes: Vec<u8>,
    candidates: Vec<Alignment>,
    ext: ExtendScratch,
}

impl AlignScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> AlignScratch {
        AlignScratch::default()
    }

    /// `(hits, lookups)` of the seeding occ-block cache since the last
    /// [`AlignScratch::reset_seed_cache_stats`].
    pub fn seed_cache_stats(&self) -> (u64, u64) {
        self.smem.cache_stats()
    }

    /// Clears the seeding cache hit/lookup counters (after publishing them).
    pub fn reset_seed_cache_stats(&mut self) {
        self.smem.reset_cache_stats();
    }

    /// Invalidates the occ-block cache; required when the scratch is reused
    /// against a different [`ReferenceIndex`].
    pub fn reset_for_index(&mut self) {
        self.smem.reset_for_index();
    }
}

/// Scratch buffers for [`SoftwareAligner`] chain extension.
#[derive(Debug, Default)]
struct ExtendScratch {
    segments: Vec<Seed>,
    left_q: Vec<u8>,
    left_t: Vec<u8>,
    dp: DpScratch,
    myers: MyersScratch,
}

/// One extension-unit work item: a hit plus its DP dimensions.
///
/// Fields mirror the paper's unified data interface (Table III):
/// `[read_idx, hit_idx, direction, read_pos, ref_pos]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HitTask {
    /// Read index.
    pub read_id: u64,
    /// Hit index within the read.
    pub hit_idx: u32,
    /// Direction (strand).
    pub is_rc: bool,
    /// Read span this task extends `[start, end)` (oriented-read coords).
    pub read_pos: (u32, u32),
    /// Reference anchor (flat coordinates).
    pub ref_pos: u64,
    /// DP query dimension.
    pub query_len: u32,
    /// DP target dimension.
    pub ref_len: u32,
}

impl HitTask {
    /// The hit length the Coordinator schedules on: the read-span extension
    /// length (paper Fig. 10 step ②).
    pub fn hit_len(&self) -> u32 {
        self.read_pos.1 - self.read_pos.0
    }
}

/// Per-read workload profile for the execution-driven hardware model.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ReadProfile {
    /// FM-index/SA block accesses performed during seeding (in order).
    pub seeding_trace: Vec<MemAddr>,
    /// Number of SMEMs found.
    pub smem_count: u32,
    /// Number of located candidate positions.
    pub located_hits: u32,
    /// Extension-unit work items.
    pub hit_tasks: Vec<HitTask>,
    /// Total DP cells filled during extension.
    pub dp_cells: u64,
}

/// A final alignment for one read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// Read index.
    pub read_id: u64,
    /// Leftmost reference position (flat coordinates).
    pub flat_pos: u64,
    /// Strand.
    pub is_rc: bool,
    /// Alignment score.
    pub score: i32,
    /// Edit transcript (oriented read vs forward reference).
    pub cigar: Cigar,
    /// Mapping quality estimate (0–60).
    pub mapq: u8,
}

/// The outcome of aligning one read: the best alignment (if any) plus the
/// workload profile.
#[derive(Debug, Clone, PartialEq)]
pub struct AlignmentOutcome {
    /// Best alignment, or `None` for an unmapped read.
    pub alignment: Option<Alignment>,
    /// Hardware workload profile.
    pub profile: ReadProfile,
}

/// The software seed-and-extend aligner.
///
/// # Examples
///
/// ```
/// use nvwa_genome::{ReferenceGenome, ReferenceParams, ReadSimulator, ReadSimParams};
/// use nvwa_align::pipeline::{ReferenceIndex, SoftwareAligner, AlignerConfig};
///
/// let genome = ReferenceGenome::synthesize(&ReferenceParams::small_test(), 1);
/// let index = ReferenceIndex::build(&genome, 32);
/// let aligner = SoftwareAligner::new(&index, AlignerConfig::default());
/// let mut sim = ReadSimulator::new(&genome, ReadSimParams::illumina_101(), 2);
/// let read = sim.simulate_read();
/// let outcome = aligner.align_read(&read);
/// assert!(outcome.alignment.is_some());
/// ```
#[derive(Debug)]
pub struct SoftwareAligner<'r> {
    index: &'r ReferenceIndex,
    config: AlignerConfig,
}

impl<'r> SoftwareAligner<'r> {
    /// Creates an aligner over a prebuilt index.
    pub fn new(index: &'r ReferenceIndex, config: AlignerConfig) -> SoftwareAligner<'r> {
        SoftwareAligner { index, config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AlignerConfig {
        &self.config
    }

    /// Aligns a simulated read (fresh scratch, hardware-trace mode).
    pub fn align_read(&self, read: &Read) -> AlignmentOutcome {
        self.align_codes(read.id, read.seq.codes())
    }

    /// Aligns a simulated read with caller-provided scratch, recording the
    /// seeding memory-access trace (the simulator's workload input).
    pub fn align_read_with(&self, read: &Read, scratch: &mut AlignScratch) -> AlignmentOutcome {
        self.align_codes_with(read.id, read.seq.codes(), scratch)
    }

    /// Aligns raw 2-bit read codes (fresh scratch, hardware-trace mode).
    pub fn align_codes(&self, read_id: u64, codes: &[u8]) -> AlignmentOutcome {
        self.align_codes_with(read_id, codes, &mut AlignScratch::new())
    }

    /// Hardware-trace mode: aligns with caller-provided scratch and records
    /// the seeding memory-access trace in the profile. The k-mer prefix LUT
    /// is bypassed so every FM-index block read is observable; the occ-block
    /// cache still engages (it is trace-invisible).
    pub fn align_codes_with(
        &self,
        read_id: u64,
        codes: &[u8],
        scratch: &mut AlignScratch,
    ) -> AlignmentOutcome {
        let mut trace = VecTrace::default();
        let mut outcome = self.align_codes_inner(read_id, codes, scratch, &mut trace);
        outcome.profile.seeding_trace = trace.0;
        outcome
    }

    /// Software fast path: no trace is recorded, which enables the k-mer
    /// prefix LUT (and keeps the occ-block cache). Alignments are
    /// bit-identical to [`SoftwareAligner::align_codes_with`]; only the
    /// profile's `seeding_trace` is empty.
    pub fn align_codes_fast(
        &self,
        read_id: u64,
        codes: &[u8],
        scratch: &mut AlignScratch,
    ) -> AlignmentOutcome {
        self.align_codes_inner(read_id, codes, scratch, &mut NullTrace)
    }

    fn align_codes_inner<T: TraceSink>(
        &self,
        read_id: u64,
        codes: &[u8],
        scratch: &mut AlignScratch,
        trace: &mut T,
    ) -> AlignmentOutcome {
        let mut profile = ReadProfile::default();
        let AlignScratch {
            smem: smem_scratch,
            smems,
            seeds,
            rc_codes,
            candidates,
            ext,
        } = scratch;

        // --- Seeding phase (Step-❶): SMEM search + locate. ---
        collect_smems_into(
            self.index.fmd(),
            codes,
            &self.config.smem,
            smem_scratch,
            smems,
            trace,
        );
        profile.smem_count = smems.len() as u32;
        seeds.clear();
        let read_len = codes.len();
        for smem in smems.iter() {
            if smem.occ() > self.config.max_smem_occ {
                continue;
            }
            let take = (smem.occ() as usize).min(self.config.max_hits_per_smem);
            for i in 0..take {
                let rank = smem.interval.k + i as u64;
                let pos = self.index.ssa.locate(self.index.fmd().fm(), rank, trace);
                let Some(hit) = self.index.fmd().resolve_hit(pos as usize, smem.len()) else {
                    continue; // seam artifact
                };
                profile.located_hits += 1;
                let (qs, qe) = if hit.is_rc {
                    (read_len - smem.query_end, read_len - smem.query_start)
                } else {
                    (smem.query_start, smem.query_end)
                };
                seeds.push(Seed {
                    query_start: qs,
                    query_end: qe,
                    ref_pos: hit.pos as u64,
                    is_rc: hit.is_rc,
                });
            }
        }

        // --- Filter & chain (Step-❷). ---
        let chains = chain_seeds(seeds, &self.config.chain);

        // --- Seed extension (Step-❸). ---
        rc_codes.clear();
        rc_codes.extend(codes.iter().rev().map(|&c| 3 - c));
        candidates.clear();
        for chain in chains.iter().take(self.config.max_chains_extended) {
            let oriented: &[u8] = if chain.is_rc { rc_codes } else { codes };
            if let Some(alignment) = self.extend_chain(read_id, chain, oriented, &mut profile, ext)
            {
                candidates.push(alignment);
            }
        }

        // --- Select the best (Step-❹). ---
        candidates.sort_by_key(|a| std::cmp::Reverse(a.score));
        let mut best = candidates.first().cloned();
        if let Some(best) = best.as_mut() {
            let second = candidates.get(1).map(|a| a.score).unwrap_or(0);
            best.mapq = mapq_estimate(best.score, second);
        }
        AlignmentOutcome {
            alignment: best,
            profile,
        }
    }

    /// Extends one chain into a full alignment, recording the extension
    /// tasks it generates.
    fn extend_chain(
        &self,
        read_id: u64,
        chain: &Chain,
        oriented: &[u8],
        profile: &mut ReadProfile,
        ext: &mut ExtendScratch,
    ) -> Option<Alignment> {
        let ExtendScratch {
            segments,
            left_q,
            left_t,
            dp,
            myers,
        } = ext;
        let flat = self.index.flat();
        let scoring = &self.config.scoring;
        let read_len = oriented.len();
        let band = self.config.band.max(1);
        // One kernel decision per read; task accounting below is
        // kernel-independent (it models the hardware EU workload).
        let bitparallel = self.config.kernel.use_bitparallel(read_len);
        let mut hit_idx = profile.hit_tasks.len() as u32;

        // Normalize the chain's seeds into strictly advancing segments.
        segments.clear();
        for &seed in &chain.seeds {
            let mut s = seed;
            if let Some(prev) = segments.last() {
                let trim_q = prev.query_end.saturating_sub(s.query_start);
                let prev_ref_end = prev.ref_pos + prev.len() as u64;
                let trim_r = prev_ref_end.saturating_sub(s.ref_pos) as usize;
                let trim = trim_q.max(trim_r);
                if trim >= s.len() {
                    continue;
                }
                s.query_start += trim;
                s.ref_pos += trim as u64;
            }
            segments.push(s);
        }
        let first = *segments.first()?;
        let last = *segments.last()?;

        let mut body = Cigar::new();
        body.push(CigarOp::Match, first.len() as u32);
        let mut prev = first;
        for &seg in &segments[1..] {
            // Glue the gap between consecutive seeds with a global DP.
            let q_gap = &oriented[prev.query_end..seg.query_start];
            let prev_ref_end = (prev.ref_pos + prev.len() as u64) as usize;
            let r_gap = &flat[prev_ref_end..seg.ref_pos as usize];
            if !q_gap.is_empty() || !r_gap.is_empty() {
                let glue: ExtensionAlignment = if bitparallel {
                    bitparallel_global(q_gap, r_gap, scoring, myers, dp)
                } else {
                    global_align_with(q_gap, r_gap, scoring, dp)
                };
                profile.dp_cells += crate::sw::dp_cells(q_gap.len(), r_gap.len());
                profile.hit_tasks.push(HitTask {
                    read_id,
                    hit_idx,
                    is_rc: chain.is_rc,
                    read_pos: (prev.query_end as u32, seg.query_start as u32),
                    ref_pos: prev_ref_end as u64,
                    query_len: q_gap.len() as u32,
                    ref_len: r_gap.len() as u32,
                });
                hit_idx += 1;
                body.concat(&glue.cigar);
            }
            body.push(CigarOp::Match, seg.len() as u32);
            prev = seg;
        }

        // Left flank: extend leftwards (reversed sequences).
        left_q.clear();
        left_q.extend(oriented[..first.query_start].iter().rev().copied());
        let window = first.query_start + self.config.band;
        let left_t_start = (first.ref_pos as usize).saturating_sub(window);
        left_t.clear();
        left_t.extend(
            flat[left_t_start..first.ref_pos as usize]
                .iter()
                .rev()
                .copied(),
        );
        let left = if bitparallel {
            bitparallel_extend(left_q, left_t, scoring, band, myers, dp)
        } else {
            banded_extend_with(left_q, left_t, scoring, band, dp)
        };
        if !left_q.is_empty() {
            profile.dp_cells += crate::banded::banded_cells(left_q.len(), left_t.len(), band);
            profile.hit_tasks.push(HitTask {
                read_id,
                hit_idx,
                is_rc: chain.is_rc,
                read_pos: (0, first.query_start as u32),
                ref_pos: left_t_start as u64,
                query_len: left_q.len() as u32,
                ref_len: left_t.len() as u32,
            });
            hit_idx += 1;
        }

        // Right flank.
        let right_q = &oriented[last.query_end..];
        let last_ref_end = (last.ref_pos + last.len() as u64) as usize;
        let right_t_end = (last_ref_end + right_q.len() + self.config.band).min(flat.len());
        let right_t = &flat[last_ref_end..right_t_end];
        let right = if bitparallel {
            bitparallel_extend(right_q, right_t, scoring, band, myers, dp)
        } else {
            banded_extend_with(right_q, right_t, scoring, band, dp)
        };
        if !right_q.is_empty() {
            profile.dp_cells += crate::banded::banded_cells(right_q.len(), right_t.len(), band);
            profile.hit_tasks.push(HitTask {
                read_id,
                hit_idx,
                is_rc: chain.is_rc,
                read_pos: (last.query_end as u32, read_len as u32),
                ref_pos: last_ref_end as u64,
                query_len: right_q.len() as u32,
                ref_len: right_t.len() as u32,
            });
        }

        // Assemble: reversed left + body + right.
        let mut cigar = Cigar::new();
        let mut left_cigar = left.cigar.clone();
        left_cigar.reverse();
        cigar.concat(&left_cigar);
        cigar.concat(&body);
        cigar.concat(&right.cigar);
        let score = cigar.score(scoring);
        let flat_pos = first.ref_pos - left.target_len as u64;
        Some(Alignment {
            read_id,
            flat_pos,
            is_rc: chain.is_rc,
            score,
            cigar,
            mapq: 0,
        })
    }
}

/// BWA-flavoured mapping-quality estimate from the best and second-best
/// scores.
fn mapq_estimate(best: i32, second: i32) -> u8 {
    if best <= 0 {
        return 0;
    }
    let gap = (best - second).max(0) as f64;
    let frac = gap / best as f64;
    (60.0 * frac).round().clamp(0.0, 60.0) as u8
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvwa_genome::reads::{ReadSimParams, ReadSimulator, Strand};
    use nvwa_genome::reference::{ReferenceGenome, ReferenceParams};

    fn test_setup() -> (ReferenceGenome, ReferenceIndex) {
        let genome = ReferenceGenome::synthesize(
            &ReferenceParams {
                total_len: 30_000,
                chromosomes: 2,
                repeat_fraction: 0.2,
                ..ReferenceParams::default()
            },
            7,
        );
        let index = ReferenceIndex::build(&genome, 32);
        (genome, index)
    }

    #[test]
    fn exact_reads_align_to_origin_with_perfect_cigar() {
        let (genome, index) = test_setup();
        let aligner = SoftwareAligner::new(&index, AlignerConfig::default());
        let params = ReadSimParams {
            sub_rate: 0.0,
            ins_rate: 0.0,
            del_rate: 0.0,
            ..ReadSimParams::illumina_101()
        };
        let mut sim = ReadSimulator::new(&genome, params, 3);
        let mut mapped = 0;
        for _ in 0..40 {
            let read = sim.simulate_read();
            let outcome = aligner.align_read(&read);
            let Some(a) = outcome.alignment else { continue };
            mapped += 1;
            assert_eq!(
                a.is_rc,
                read.origin.strand == Strand::Reverse,
                "read {}",
                read.id
            );
            assert_eq!(a.flat_pos, read.origin.flat_pos as u64, "read {}", read.id);
            assert_eq!(a.score, 101);
            assert_eq!(a.cigar.to_string(), "101=");
        }
        assert!(mapped >= 38, "only {mapped}/40 exact reads mapped");
    }

    #[test]
    fn noisy_reads_align_near_origin() {
        let (genome, index) = test_setup();
        let aligner = SoftwareAligner::new(&index, AlignerConfig::default());
        let mut sim = ReadSimulator::new(&genome, ReadSimParams::illumina_101(), 5);
        let reads = sim.simulate_reads(60);
        let mut close = 0;
        let mut mapped = 0;
        for read in &reads {
            let outcome = aligner.align_read(read);
            if let Some(a) = outcome.alignment {
                mapped += 1;
                if (a.flat_pos as i64 - read.origin.flat_pos as i64).abs() <= 20 {
                    close += 1;
                }
            }
        }
        assert!(mapped >= 55, "only {mapped}/60 reads mapped");
        assert!(
            close * 10 >= mapped * 9,
            "only {close}/{mapped} near origin"
        );
    }

    #[test]
    fn profile_contains_seeding_trace_and_tasks() {
        let (genome, index) = test_setup();
        let aligner = SoftwareAligner::new(&index, AlignerConfig::default());
        let mut sim = ReadSimulator::new(&genome, ReadSimParams::illumina_101(), 11);
        let read = sim.simulate_read();
        let outcome = aligner.align_read(&read);
        let p = &outcome.profile;
        assert!(
            p.seeding_trace.len() >= 100,
            "trace {} too small",
            p.seeding_trace.len()
        );
        assert!(p.smem_count >= 1);
        assert!(p.located_hits >= 1);
    }

    #[test]
    fn hit_task_lengths_are_bounded_by_read_length() {
        let (genome, index) = test_setup();
        let aligner = SoftwareAligner::new(&index, AlignerConfig::default());
        let mut sim = ReadSimulator::new(&genome, ReadSimParams::illumina_101(), 13);
        for _ in 0..20 {
            let read = sim.simulate_read();
            let outcome = aligner.align_read(&read);
            for t in &outcome.profile.hit_tasks {
                assert!(t.hit_len() as usize <= read.seq.len());
                assert!(t.read_pos.0 <= t.read_pos.1);
                assert_eq!(t.hit_len(), t.query_len);
            }
        }
    }

    #[test]
    fn unmappable_read_is_unmapped() {
        let (_, index) = test_setup();
        let aligner = SoftwareAligner::new(&index, AlignerConfig::default());
        // A read of pure AAAA…: the synthetic genome is GC-balanced random,
        // so a 101-A run cannot seed anywhere with min_seed_len 19.
        let codes = vec![0u8; 101];
        let outcome = aligner.align_codes(999, &codes);
        // Either unmapped or (if a long A-run exists) low score; require the
        // common case.
        if let Some(a) = outcome.alignment {
            assert!(a.score < 101);
        }
    }

    #[test]
    fn cigar_spans_match_read_and_reference() {
        let (genome, index) = test_setup();
        let aligner = SoftwareAligner::new(&index, AlignerConfig::default());
        let mut sim = ReadSimulator::new(&genome, ReadSimParams::illumina_101(), 21);
        for _ in 0..20 {
            let read = sim.simulate_read();
            if let Some(a) = aligner.align_read(&read).alignment {
                // Query consumption can be less than the read (soft clips at
                // the flanks) but never more.
                assert!(a.cigar.query_len() <= read.seq.len());
                assert!(a.cigar.target_len() > 0);
                // The reported score is always the transcript's score.
                assert_eq!(a.cigar.score(&aligner.config().scoring), a.score);
            }
        }
    }

    #[test]
    fn fast_path_and_scratch_reuse_are_bit_identical() {
        let (genome, index) = test_setup();
        let aligner = SoftwareAligner::new(&index, AlignerConfig::default());
        let mut sim = ReadSimulator::new(&genome, ReadSimParams::illumina_101(), 17);
        let mut scratch = AlignScratch::new();
        let mut traced_total = 0usize;
        for _ in 0..25 {
            let read = sim.simulate_read();
            // Fresh-scratch traced path is the reference.
            let reference = aligner.align_read(&read);
            // Reused scratch, traced: everything identical including trace.
            let reused = aligner.align_read_with(&read, &mut scratch);
            assert_eq!(reused, reference, "read {}", read.id);
            // Fast path (LUT + cache, no trace): same alignment, same
            // workload counts, empty seeding trace.
            let fast = aligner.align_codes_fast(read.id, read.seq.codes(), &mut scratch);
            assert_eq!(fast.alignment, reference.alignment, "read {}", read.id);
            assert_eq!(fast.profile.smem_count, reference.profile.smem_count);
            assert_eq!(fast.profile.located_hits, reference.profile.located_hits);
            assert_eq!(fast.profile.hit_tasks, reference.profile.hit_tasks);
            assert_eq!(fast.profile.dp_cells, reference.profile.dp_cells);
            assert!(fast.profile.seeding_trace.is_empty());
            traced_total += reference.profile.seeding_trace.len();
        }
        assert!(traced_total > 0, "traced path must record block reads");
        let (hits, lookups) = scratch.seed_cache_stats();
        assert!(lookups > 0, "occ cache must be exercised");
        assert!(hits > 0, "occ cache must hit on real reads");
    }

    #[test]
    fn reference_codes_are_shared_not_copied() {
        let (_, index) = test_setup();
        let shared = index.flat_shared();
        assert!(std::ptr::eq(shared.as_ptr(), index.flat().as_ptr()));
        // An index built from an existing Arc shares, not copies.
        let index2 = ReferenceIndex::from_codes(index.flat_shared(), 32);
        assert!(std::ptr::eq(index2.flat().as_ptr(), index.flat().as_ptr()));
    }

    #[test]
    fn mapq_reflects_score_gap() {
        assert_eq!(mapq_estimate(100, 100), 0);
        assert_eq!(mapq_estimate(100, 0), 60);
        assert!(mapq_estimate(100, 50) > 0);
        assert_eq!(mapq_estimate(0, 0), 0);
    }
}
