//! The wire protocol: length-prefixed JSON frames over TCP.
//!
//! Every message is a 4-byte big-endian length followed by that many bytes
//! of UTF-8 JSON (one [`JsonValue`] document). The framing is symmetric —
//! requests and responses use the same encoding — and deliberately boring:
//! no external serialization crates (DESIGN.md §7), and any JSON client in
//! any language can speak it with ~10 lines of code.
//!
//! Requests (`kind` selects the operation, defaulting to `"align"`):
//!
//! ```json
//! {"kind": "align", "id": 7, "seq": "ACGTACGT...", "deadline_ms": 50,
//!  "tenant": "homo_sapiens", "region": 123456}
//! {"kind": "stats"}
//! {"kind": "flight"}
//! {"kind": "shutdown"}
//! ```
//!
//! `tenant` names the reference to align against on a multi-tenant server
//! (absent → the server's default tenant, so pre-tenant clients keep
//! working). `region` is an optional genome-coordinate routing hint; the
//! server hashes it (or, absent, the read itself) to pick a shard —
//! deterministic either way.
//!
//! Align responses carry a `status` of `"ok"` (aligned; `mapped` tells
//! whether a best alignment exists), `"shed"` (admission queue full or
//! server draining — explicit backpressure, the request was *not*
//! processed), `"quota"` (the tenant's admission quota is exhausted — a
//! per-tenant shed, distinct so clients can tell global overload from
//! their own), `"deadline"` (expired before a batch formed) or `"error"`
//! (malformed request). Alignment fields are bit-identical to the offline
//! `nvwa-align` output for the same sequence.

use std::io::{Read, Write};

use nvwa_align::pipeline::Alignment;
use nvwa_telemetry::JsonValue;

/// Frames larger than this are rejected (protects the server from a
/// garbage length prefix allocating gigabytes).
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Writes one length-prefixed JSON frame.
///
/// # Errors
///
/// Propagates the underlying I/O error.
pub fn write_frame(w: &mut impl Write, doc: &JsonValue) -> std::io::Result<()> {
    let body = doc.to_string_compact();
    let len = body.len() as u32;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

/// Reads one length-prefixed JSON frame. Returns `Ok(None)` on a clean EOF
/// at a frame boundary.
///
/// # Errors
///
/// Propagates I/O errors (including timeouts), and returns
/// `InvalidData` for oversized frames or malformed JSON.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Option<JsonValue>> {
    let mut len_buf = [0u8; 4];
    // EOF before any length byte is a clean close; EOF mid-frame is an error.
    match r.read(&mut len_buf) {
        Ok(0) => return Ok(None),
        Ok(n) => r.read_exact(&mut len_buf[n..])?,
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte limit"),
        ));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    let text = String::from_utf8(body)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    let doc = JsonValue::parse(&text)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    Ok(Some(doc))
}

/// A decoded client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Align one read.
    Align {
        /// Client-chosen request id, echoed in the response.
        id: u64,
        /// 2-bit base codes decoded from the `seq` string.
        codes: Vec<u8>,
        /// Per-request deadline in milliseconds (queueing budget), if any.
        deadline_ms: Option<u64>,
        /// Tenant (reference) to align against; `None` → server default.
        tenant: Option<String>,
        /// Genome-coordinate shard-routing hint, if the client has one.
        region: Option<u64>,
    },
    /// Return the server's current metrics snapshot.
    Stats,
    /// Dump the flight recorder's recent-event ring.
    Flight,
    /// Begin a graceful drain and exit.
    Shutdown,
}

impl Request {
    /// Decodes a request document.
    ///
    /// # Errors
    ///
    /// Returns a client-facing message naming the violated constraint.
    pub fn decode(doc: &JsonValue) -> Result<Request, String> {
        let kind = doc
            .get("kind")
            .and_then(JsonValue::as_str)
            .unwrap_or("align");
        match kind {
            "align" => {
                let id = doc
                    .get("id")
                    .and_then(JsonValue::as_num)
                    .filter(|n| *n >= 0.0 && n.fract() == 0.0)
                    .ok_or("align request needs a non-negative integer \"id\"")?
                    as u64;
                let seq = doc
                    .get("seq")
                    .and_then(JsonValue::as_str)
                    .ok_or("align request needs a \"seq\" string")?;
                if seq.is_empty() {
                    return Err("\"seq\" must be non-empty".to_string());
                }
                let codes = seq
                    .parse::<nvwa_genome::DnaSeq>()
                    .map_err(|e| e.to_string())?
                    .codes()
                    .to_vec();
                let deadline_ms = doc
                    .get("deadline_ms")
                    .and_then(JsonValue::as_num)
                    .filter(|n| *n >= 0.0)
                    .map(|n| n as u64);
                let tenant = doc
                    .get("tenant")
                    .and_then(JsonValue::as_str)
                    .map(str::to_string);
                if matches!(&tenant, Some(t) if t.is_empty()) {
                    return Err("\"tenant\" must be non-empty when present".to_string());
                }
                let region = doc
                    .get("region")
                    .and_then(JsonValue::as_num)
                    .filter(|n| *n >= 0.0)
                    .map(|n| n as u64);
                Ok(Request::Align {
                    id,
                    codes,
                    deadline_ms,
                    tenant,
                    region,
                })
            }
            "stats" => Ok(Request::Stats),
            "flight" => Ok(Request::Flight),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown request kind {other:?}")),
        }
    }

    /// Encodes the request (the client side of [`Request::decode`]).
    pub fn encode(&self) -> JsonValue {
        match self {
            Request::Align {
                id,
                codes,
                deadline_ms,
                tenant,
                region,
            } => {
                let seq: String = codes
                    .iter()
                    .map(|&c| nvwa_genome::Base::from_code(c).map_or('N', |b| b.to_char()))
                    .collect();
                let mut pairs = vec![
                    ("kind", JsonValue::Str("align".to_string())),
                    ("id", JsonValue::Num(*id as f64)),
                    ("seq", JsonValue::Str(seq)),
                ];
                if let Some(ms) = deadline_ms {
                    pairs.push(("deadline_ms", JsonValue::Num(*ms as f64)));
                }
                if let Some(t) = tenant {
                    pairs.push(("tenant", JsonValue::Str(t.clone())));
                }
                if let Some(r) = region {
                    pairs.push(("region", JsonValue::Num(*r as f64)));
                }
                JsonValue::obj(pairs)
            }
            Request::Stats => JsonValue::obj(vec![("kind", JsonValue::Str("stats".to_string()))]),
            Request::Flight => JsonValue::obj(vec![("kind", JsonValue::Str("flight".to_string()))]),
            Request::Shutdown => {
                JsonValue::obj(vec![("kind", JsonValue::Str("shutdown".to_string()))])
            }
        }
    }
}

/// Terminal status of an align request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Processed; `mapped` distinguishes aligned from unmapped reads.
    Ok,
    /// Rejected by backpressure (queue full or draining); not processed.
    Shed,
    /// Rejected because the tenant's admission quota is exhausted; not
    /// processed. A per-tenant shed, kept distinct so one tenant's
    /// overload is visible as such to its own clients.
    Quota,
    /// Deadline expired while queued; not processed.
    Deadline,
    /// Malformed request.
    Error,
}

impl Status {
    /// The wire string.
    pub fn as_str(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Shed => "shed",
            Status::Quota => "quota",
            Status::Deadline => "deadline",
            Status::Error => "error",
        }
    }

    /// Parses the wire string.
    pub fn from_wire(s: &str) -> Option<Status> {
        Some(match s {
            "ok" => Status::Ok,
            "shed" => Status::Shed,
            "quota" => Status::Quota,
            "deadline" => Status::Deadline,
            "error" => Status::Error,
            _ => return None,
        })
    }
}

/// A decoded align response.
#[derive(Debug, Clone, PartialEq)]
pub struct AlignResponse {
    /// Echo of the request id.
    pub id: u64,
    /// Terminal status.
    pub status: Status,
    /// Human-readable detail for non-`ok` statuses.
    pub error: Option<String>,
    /// Alignment (for `ok` + mapped), bit-identical to the offline aligner.
    pub alignment: Option<WireAlignment>,
    /// Size of the batch this request executed in (`ok` only).
    pub batch_size: Option<u64>,
    /// Simulated accelerator cycles for the batch (hardware-in-the-loop
    /// backend only).
    pub sim_cycles: Option<u64>,
}

/// The alignment fields carried on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireAlignment {
    /// Leftmost reference position (flat coordinates).
    pub pos: u64,
    /// Strand.
    pub is_rc: bool,
    /// Alignment score.
    pub score: i32,
    /// CIGAR string.
    pub cigar: String,
    /// Mapping quality (0–60).
    pub mapq: u8,
}

impl WireAlignment {
    /// Projects an [`Alignment`] onto the wire fields.
    pub fn from_alignment(a: &Alignment) -> WireAlignment {
        WireAlignment {
            pos: a.flat_pos,
            is_rc: a.is_rc,
            score: a.score,
            cigar: a.cigar.to_string(),
            mapq: a.mapq,
        }
    }
}

impl AlignResponse {
    /// An `ok` response from an optional alignment.
    pub fn ok(id: u64, alignment: Option<&Alignment>, batch_size: u64) -> AlignResponse {
        AlignResponse {
            id,
            status: Status::Ok,
            error: None,
            alignment: alignment.map(WireAlignment::from_alignment),
            batch_size: Some(batch_size),
            sim_cycles: None,
        }
    }

    /// A terminal failure response (`shed` / `deadline` / `error`).
    pub fn failure(id: u64, status: Status, detail: &str) -> AlignResponse {
        AlignResponse {
            id,
            status,
            error: Some(detail.to_string()),
            alignment: None,
            batch_size: None,
            sim_cycles: None,
        }
    }

    /// Encodes the response document.
    pub fn encode(&self) -> JsonValue {
        let mut pairs = vec![
            ("id", JsonValue::Num(self.id as f64)),
            ("status", JsonValue::Str(self.status.as_str().to_string())),
            ("mapped", JsonValue::Bool(self.alignment.is_some())),
        ];
        if let Some(a) = &self.alignment {
            pairs.push(("pos", JsonValue::Num(a.pos as f64)));
            pairs.push(("is_rc", JsonValue::Bool(a.is_rc)));
            pairs.push(("score", JsonValue::Num(a.score as f64)));
            pairs.push(("cigar", JsonValue::Str(a.cigar.clone())));
            pairs.push(("mapq", JsonValue::Num(a.mapq as f64)));
        }
        if let Some(b) = self.batch_size {
            pairs.push(("batch_size", JsonValue::Num(b as f64)));
        }
        if let Some(c) = self.sim_cycles {
            pairs.push(("sim_cycles", JsonValue::Num(c as f64)));
        }
        if let Some(e) = &self.error {
            pairs.push(("error", JsonValue::Str(e.clone())));
        }
        JsonValue::obj(pairs)
    }

    /// Decodes a response document.
    ///
    /// # Errors
    ///
    /// Returns a message naming the malformed field.
    pub fn decode(doc: &JsonValue) -> Result<AlignResponse, String> {
        let id = doc
            .get("id")
            .and_then(JsonValue::as_num)
            .ok_or("response missing numeric \"id\"")? as u64;
        let status = doc
            .get("status")
            .and_then(JsonValue::as_str)
            .and_then(Status::from_wire)
            .ok_or("response missing valid \"status\"")?;
        let mapped = matches!(doc.get("mapped"), Some(JsonValue::Bool(true)));
        let alignment = if mapped {
            Some(WireAlignment {
                pos: doc
                    .get("pos")
                    .and_then(JsonValue::as_num)
                    .ok_or("mapped response missing \"pos\"")? as u64,
                is_rc: matches!(doc.get("is_rc"), Some(JsonValue::Bool(true))),
                score: doc
                    .get("score")
                    .and_then(JsonValue::as_num)
                    .ok_or("mapped response missing \"score\"")? as i32,
                cigar: doc
                    .get("cigar")
                    .and_then(JsonValue::as_str)
                    .ok_or("mapped response missing \"cigar\"")?
                    .to_string(),
                mapq: doc
                    .get("mapq")
                    .and_then(JsonValue::as_num)
                    .ok_or("mapped response missing \"mapq\"")? as u8,
            })
        } else {
            None
        };
        Ok(AlignResponse {
            id,
            status,
            error: doc
                .get("error")
                .and_then(JsonValue::as_str)
                .map(str::to_string),
            alignment,
            batch_size: doc
                .get("batch_size")
                .and_then(JsonValue::as_num)
                .map(|n| n as u64),
            sim_cycles: doc
                .get("sim_cycles")
                .and_then(JsonValue::as_num)
                .map(|n| n as u64),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let doc = Request::Align {
            id: 42,
            codes: vec![0, 1, 2, 3],
            deadline_ms: Some(50),
            tenant: None,
            region: None,
        }
        .encode();
        let mut buf = Vec::new();
        write_frame(&mut buf, &doc).unwrap();
        let back = read_frame(&mut buf.as_slice()).unwrap().unwrap();
        assert_eq!(back, doc);
        assert_eq!(
            Request::decode(&back).unwrap(),
            Request::Align {
                id: 42,
                codes: vec![0, 1, 2, 3],
                deadline_ms: Some(50),
                tenant: None,
                region: None,
            }
        );
    }

    #[test]
    fn tenant_and_region_round_trip_and_default_to_none() {
        let req = Request::Align {
            id: 7,
            codes: vec![2, 2, 0, 1],
            deadline_ms: None,
            tenant: Some("homo_sapiens".to_string()),
            region: Some(123_456),
        };
        let doc = req.encode();
        assert_eq!(Request::decode(&doc).unwrap(), req);
        // A pre-tenant request document decodes with both fields absent —
        // backward compatible by construction.
        let legacy = JsonValue::obj(vec![
            ("id", JsonValue::Num(1.0)),
            ("seq", JsonValue::Str("ACGT".to_string())),
        ]);
        match Request::decode(&legacy).unwrap() {
            Request::Align { tenant, region, .. } => {
                assert_eq!(tenant, None);
                assert_eq!(region, None);
            }
            other => panic!("expected align, got {other:?}"),
        }
        // An empty tenant string is rejected, not silently defaulted.
        let empty = JsonValue::obj(vec![
            ("id", JsonValue::Num(1.0)),
            ("seq", JsonValue::Str("ACGT".to_string())),
            ("tenant", JsonValue::Str(String::new())),
        ]);
        assert!(Request::decode(&empty).unwrap_err().contains("tenant"));
    }

    #[test]
    fn quota_status_round_trips() {
        assert_eq!(Status::Quota.as_str(), "quota");
        assert_eq!(Status::from_wire("quota"), Some(Status::Quota));
        let resp = AlignResponse::failure(11, Status::Quota, "tenant quota exhausted");
        assert_eq!(AlignResponse::decode(&resp.encode()).unwrap(), resp);
    }

    #[test]
    fn clean_eof_is_none_and_oversize_is_rejected() {
        let empty: &[u8] = &[];
        assert!(read_frame(&mut { empty }).unwrap().is_none());
        let huge = (MAX_FRAME_BYTES as u32 + 1).to_be_bytes();
        let err = read_frame(&mut huge.as_slice()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let doc = JsonValue::obj(vec![("kind", JsonValue::Str("stats".to_string()))]);
        let mut buf = Vec::new();
        write_frame(&mut buf, &doc).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_frame(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn request_decode_rejects_garbage() {
        let bad = JsonValue::obj(vec![("kind", JsonValue::Str("align".to_string()))]);
        assert!(Request::decode(&bad).unwrap_err().contains("id"));
        let bad_seq = JsonValue::obj(vec![
            ("id", JsonValue::Num(1.0)),
            ("seq", JsonValue::Str("ACGTX".to_string())),
        ]);
        assert!(Request::decode(&bad_seq).is_err());
        let unknown = JsonValue::obj(vec![("kind", JsonValue::Str("nope".to_string()))]);
        assert!(Request::decode(&unknown).unwrap_err().contains("nope"));
    }

    #[test]
    fn responses_round_trip_with_and_without_alignment() {
        let mapped = AlignResponse {
            id: 9,
            status: Status::Ok,
            error: None,
            alignment: Some(WireAlignment {
                pos: 1234,
                is_rc: true,
                score: 99,
                cigar: "101=".to_string(),
                mapq: 60,
            }),
            batch_size: Some(16),
            sim_cycles: Some(5000),
        };
        assert_eq!(AlignResponse::decode(&mapped.encode()).unwrap(), mapped);
        let shed = AlignResponse::failure(3, Status::Shed, "queue full");
        assert_eq!(AlignResponse::decode(&shed.encode()).unwrap(), shed);
    }
}
