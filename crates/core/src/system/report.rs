//! Simulation results.

use nvwa_sim::Cycle;

/// Everything a simulation run measures. Produced by
/// [`crate::system::simulate`]; consumed by the experiment drivers.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// End-to-end execution time in cycles.
    pub total_cycles: Cycle,
    /// Reads processed.
    pub reads: u64,
    /// Hits dispatched to EUs.
    pub hits_dispatched: u64,
    /// Average SU utilization (0.0–1.0).
    pub su_utilization: f64,
    /// Average EU utilization (0.0–1.0).
    pub eu_utilization: f64,
    /// SU utilization time series (bucket means, Fig. 12a/b).
    pub su_series: Vec<f64>,
    /// EU utilization time series (Fig. 12c/d).
    pub eu_series: Vec<f64>,
    /// Bucket width of the series, in cycles.
    pub stats_bucket: Cycle,
    /// Assignment matrix: `[hit_interval][eu_class] → hits` (Fig. 12e/f).
    pub assignment_matrix: Vec<Vec<u64>>,
    /// Upper bounds of the hit intervals used for the matrix rows.
    pub hit_class_bounds: Vec<usize>,
    /// PE counts of the EU classes used for the matrix columns.
    pub eu_class_pes: Vec<u32>,
    /// Buffer switches performed by the Coordinator.
    pub buffer_switches: u64,
    /// Allocation rounds executed.
    pub alloc_rounds: u64,
    /// Hit-round outcomes left unallocated (fragmentation retries).
    pub fragmented_hits: u64,
    /// Times a SU suspended on a full Store Buffer.
    pub su_stall_events: u64,
    /// HBM transactions issued.
    pub hbm_requests: u64,
    /// HBM access energy in joules.
    pub hbm_energy_j: f64,
    /// SU index-cache hit rate.
    pub su_cache_hit_rate: f64,
}

impl SimReport {
    /// Throughput in reads per second at the given clock, or `None` when
    /// the run covered zero cycles (throughput is undefined, not zero).
    pub fn reads_per_sec(&self, freq_ghz: f64) -> Option<f64> {
        if self.total_cycles == 0 {
            return None;
        }
        Some(self.reads as f64 / (self.total_cycles as f64 / (freq_ghz * 1e9)))
    }

    /// Throughput in kilo-reads per second at the paper's 1 GHz clock, or
    /// `None` when the run covered zero cycles.
    pub fn kreads_per_sec(&self) -> Option<f64> {
        self.reads_per_sec(1.0).map(|r| r / 1e3)
    }

    /// Fraction of hits in interval `hit_class` that landed on the
    /// same-indexed (optimal) EU class. Returns `None` when no hits of that
    /// class were dispatched or the classes do not align one-to-one.
    pub fn correct_allocation_fraction(&self, hit_class: usize) -> Option<f64> {
        let row = self.assignment_matrix.get(hit_class)?;
        let total: u64 = row.iter().sum();
        if total == 0 || hit_class >= row.len() {
            return None;
        }
        Some(row[hit_class] as f64 / total as f64)
    }

    /// Overall fraction of hits on their optimal class.
    pub fn overall_correct_allocation(&self) -> f64 {
        let mut correct = 0u64;
        let mut total = 0u64;
        for (i, row) in self.assignment_matrix.iter().enumerate() {
            total += row.iter().sum::<u64>();
            if i < row.len() {
                correct += row[i];
            }
        }
        if total == 0 {
            0.0
        } else {
            correct as f64 / total as f64
        }
    }

    /// Average HBM power over the run, in watts, at the given clock.
    pub fn hbm_power_w(&self, freq_ghz: f64) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.hbm_energy_j / (self.total_cycles as f64 / (freq_ghz * 1e9))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            total_cycles: 1_000_000,
            reads: 4000,
            hits_dispatched: 16000,
            su_utilization: 0.9,
            eu_utilization: 0.8,
            su_series: vec![0.9],
            eu_series: vec![0.8],
            stats_bucket: 4096,
            assignment_matrix: vec![
                vec![90, 10, 0, 0],
                vec![5, 80, 15, 0],
                vec![0, 10, 60, 30],
                vec![0, 0, 10, 90],
            ],
            hit_class_bounds: vec![16, 32, 64, 128],
            eu_class_pes: vec![16, 32, 64, 128],
            buffer_switches: 10,
            alloc_rounds: 100,
            fragmented_hits: 5,
            su_stall_events: 0,
            hbm_requests: 100_000,
            hbm_energy_j: 1e-6,
            su_cache_hit_rate: 0.7,
        }
    }

    #[test]
    fn throughput_math() {
        let r = report();
        // 4000 reads in 1 ms at 1 GHz → 4 M reads/s.
        assert!((r.reads_per_sec(1.0).unwrap() - 4.0e6).abs() < 1.0);
        assert!((r.kreads_per_sec().unwrap() - 4000.0).abs() < 0.01);
    }

    #[test]
    fn allocation_fractions() {
        let r = report();
        assert_eq!(r.correct_allocation_fraction(0), Some(0.9));
        assert_eq!(r.correct_allocation_fraction(1), Some(0.8));
        assert_eq!(r.correct_allocation_fraction(9), None);
        let overall = r.overall_correct_allocation();
        assert!((overall - 320.0 / 400.0).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_has_no_throughput() {
        let mut r = report();
        r.total_cycles = 0;
        assert_eq!(r.reads_per_sec(1.0), None);
        assert_eq!(r.kreads_per_sec(), None);
        assert_eq!(r.hbm_power_w(1.0), 0.0);
    }
}
