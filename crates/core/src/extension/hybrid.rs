//! The Hybrid Units Strategy (Fig. 9, Formulas 4–5).
//!
//! Given a hit-length distribution bucketed into `n` intervals with masses
//! `s_i` and per-class PE counts `p_i`, provision `x_i` units of each class
//! under a total PE budget `N` such that unit counts are proportional to
//! demand:
//!
//! ```text
//! x_i = s_i · N / Σ_j p_j · s_j        (Formula 5)
//! ```
//!
//! The paper derives NvWa's Table I configuration (28/20/16/6 units of
//! 16/32/64/128 PEs) from the NA12878 hit distribution with N = 2880.

use crate::config::EuClass;
use nvwa_sim::Cycle;

use super::systolic::matrix_fill_latency;

/// The NA12878-derived interval masses over the four power-of-two classes
/// (16/32/64/128 PEs).
///
/// These are the masses implied by the paper's published solution of
/// Formula 5 (x = 28, 20, 16, 6 with N = 2880): inverting the formula gives
/// s ∝ x, normalized. Our synthetic read workload is calibrated against
/// the same masses (see `nvwa-core::units::workload`).
pub const NA12878_INTERVAL_MASSES: [f64; 4] = [0.40, 0.2857, 0.2286, 0.0857];

/// Solves Formula 5: unit counts per class for the given interval masses,
/// per-class PE sizes and total PE budget.
///
/// Counts are rounded down and leftover budget is spent greedily on the
/// classes with the largest fractional remainder (never exceeding `N`).
///
/// # Examples
///
/// ```
/// use nvwa_core::extension::{solve_classes, NA12878_INTERVAL_MASSES};
/// let classes = solve_classes(&NA12878_INTERVAL_MASSES, &[16, 32, 64, 128], 2880);
/// let counts: Vec<u32> = classes.iter().map(|c| c.count).collect();
/// assert_eq!(counts, vec![28, 20, 16, 6]); // the paper's Table I
/// ```
///
/// # Panics
///
/// Panics if the inputs are inconsistent (length mismatch, non-positive
/// masses sum, zero PEs).
pub fn solve_classes(masses: &[f64], pes_per_class: &[u32], total_pes: u32) -> Vec<EuClass> {
    assert_eq!(
        masses.len(),
        pes_per_class.len(),
        "one mass per class required"
    );
    assert!(!masses.is_empty(), "need at least one class");
    assert!(
        pes_per_class.iter().all(|&p| p > 0),
        "PE counts must be positive"
    );
    let mass_sum: f64 = masses.iter().sum();
    assert!(mass_sum > 0.0, "masses must have positive total");

    let weighted: f64 = masses
        .iter()
        .zip(pes_per_class)
        .map(|(&s, &p)| s * p as f64)
        .sum();
    let exact: Vec<f64> = masses
        .iter()
        .map(|&s| s * total_pes as f64 / weighted)
        .collect();
    let mut counts: Vec<u32> = exact.iter().map(|&x| x.floor() as u32).collect();

    // Spend leftover budget on the largest remainders that still fit.
    let mut used: u32 = counts.iter().zip(pes_per_class).map(|(&c, &p)| c * p).sum();
    let mut order: Vec<usize> = (0..counts.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = exact[a] - exact[a].floor();
        let fb = exact[b] - exact[b].floor();
        fb.partial_cmp(&fa).unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut progressed = true;
    while progressed {
        progressed = false;
        for &i in &order {
            if used + pes_per_class[i] <= total_pes {
                counts[i] += 1;
                used += pes_per_class[i];
                progressed = true;
            }
        }
        // One extra unit per class at most per sweep; stop once nothing fits.
        if order.iter().all(|&i| used + pes_per_class[i] > total_pes) {
            break;
        }
    }

    masses
        .iter()
        .enumerate()
        .map(|(i, _)| EuClass::new(pes_per_class[i], counts[i]))
        .collect()
}

/// The uniform comparison pool: `units` identical units of `pes` PEs
/// (Fig. 9b uses four units of 64 PEs).
pub fn uniform_classes(pes: u32, units: u32) -> Vec<EuClass> {
    vec![EuClass::new(pes, units)]
}

/// The interval upper bounds implied by a class list (a hit of length `l`
/// belongs to the first class with `pes >= l`; longer hits go to the last).
pub fn interval_bounds(classes: &[EuClass]) -> Vec<usize> {
    classes.iter().map(|c| c.pes as usize).collect()
}

/// How hits are pulled from the queue in the Fig. 9 walkthrough.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueuePolicy {
    /// Hits issue in arrival order to the first unit that frees up
    /// (the uniform-units baseline behaviour).
    InOrder,
    /// Hits are sorted longest-first and each takes the idle unit with the
    /// lowest Formula-3 latency (the hybrid strategy's scheduling).
    BestFitLongestFirst,
}

/// Simulates a queue of square hits (`R = Q = len`) over a set of units,
/// reproducing the Fig. 9(d) execution flow. Units load a hit one cycle
/// after completing the previous one; the first loads happen at cycle 1.
/// Returns the cycle at which the last hit completes.
///
/// # Panics
///
/// Panics if `units` is empty.
pub fn queue_makespan(hit_lens: &[u32], units: &[u32], policy: QueuePolicy) -> Cycle {
    assert!(!units.is_empty(), "need at least one unit");
    // free_at[u]: the cycle unit u can *load* its next hit.
    let mut free_at: Vec<Cycle> = vec![1; units.len()];
    let mut order: Vec<u32> = hit_lens.to_vec();
    if policy == QueuePolicy::BestFitLongestFirst {
        order.sort_by(|a, b| b.cmp(a));
    }
    let mut makespan = 0;
    for &len in &order {
        // Earliest load time across units; among the earliest (or, for
        // best-fit, among all units at that earliest time), pick minimal
        // Formula-3 latency.
        let earliest = *free_at.iter().min().expect("non-empty units");
        let u = (0..units.len())
            .filter(|&u| free_at[u] == earliest)
            .min_by_key(|&u| match policy {
                QueuePolicy::InOrder => u as u64, // first free unit
                QueuePolicy::BestFitLongestFirst => {
                    matrix_fill_latency(len as u64, len as u64, units[u])
                }
            })
            .expect("at least one unit at the earliest time");
        let latency = matrix_fill_latency(len as u64, len as u64, units[u]);
        let done = earliest + latency; // completes (visible) at this cycle
        free_at[u] = done + 1; // reload on the next cycle
        makespan = makespan.max(done);
    }
    makespan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formula5_reproduces_table_one() {
        let classes = solve_classes(&NA12878_INTERVAL_MASSES, &[16, 32, 64, 128], 2880);
        let counts: Vec<(u32, u32)> = classes.iter().map(|c| (c.pes, c.count)).collect();
        assert_eq!(counts, vec![(16, 28), (32, 20), (64, 16), (128, 6)]);
        let total: u32 = classes.iter().map(|c| c.total_pes()).sum();
        assert_eq!(total, 2880);
    }

    #[test]
    fn budget_is_never_exceeded() {
        for n in [100u32, 500, 1000, 2880, 3000] {
            let classes = solve_classes(&[0.3, 0.3, 0.4], &[8, 32, 64], n);
            let used: u32 = classes.iter().map(|c| c.total_pes()).sum();
            assert!(used <= n, "budget {n} exceeded: {used}");
            // At least 90% of the budget is spent (greedy fill).
            assert!(used * 10 >= n * 9, "budget {n} underused: {used}");
        }
    }

    #[test]
    fn proportionality_to_masses() {
        let classes = solve_classes(&[0.8, 0.2], &[16, 16], 1600);
        // Same PE size → counts directly proportional to masses.
        assert_eq!(classes[0].count, 80);
        assert_eq!(classes[1].count, 20);
    }

    #[test]
    fn fig9_uniform_units_take_455_cycles() {
        // Hits (20, 40, 10, 65, 127) on four 64-PE units, in order.
        let makespan = queue_makespan(&[20, 40, 10, 65, 127], &[64; 4], QueuePolicy::InOrder);
        assert_eq!(makespan, 455);
    }

    #[test]
    fn fig9_hybrid_units_take_257_cycles() {
        // Same hits on (16, 16, 32, 64, 128): all load at once, best-fit.
        let makespan = queue_makespan(
            &[20, 40, 10, 65, 127],
            &[16, 16, 32, 64, 128],
            QueuePolicy::BestFitLongestFirst,
        );
        assert_eq!(makespan, 257);
    }

    #[test]
    fn equal_split_51_pes_is_still_worse_than_hybrid() {
        // The paper's footnote analysis: five uniform units of 51 PEs
        // (255 total) cannot beat the hybrid split either.
        let makespan = queue_makespan(&[20, 40, 10, 65, 127], &[51; 5], QueuePolicy::InOrder);
        assert!(makespan > 257, "51-PE split took {makespan}");
    }

    #[test]
    fn interval_bounds_follow_classes() {
        let classes = vec![EuClass::new(16, 1), EuClass::new(64, 1)];
        assert_eq!(interval_bounds(&classes), vec![16, 64]);
    }

    #[test]
    #[should_panic(expected = "one mass per class")]
    fn mismatched_inputs_panic() {
        let _ = solve_classes(&[1.0], &[16, 32], 100);
    }
}
