//! Pluggable seeding behind the unified interface.
//!
//! The paper's Sec. VI argues that NvWa's loose coupling lets "multifarious
//! algorithms benefit ... if they follow the defined unified interface".
//! This module is that boundary on the software side: a [`SeedingAlgorithm`]
//! produces strand-resolved [`Seed`]s plus a memory-access trace, and the
//! rest of the pipeline (chain → extend) is algorithm-agnostic. Two
//! implementations are provided: the FMD/SMEM search BWA-MEM uses (NvWa's
//! SUs) and Darwin-style k-mer hash seeding.

use nvwa_index::fmd_index::FmdIndex;
use nvwa_index::kmer_index::KmerIndex;
use nvwa_index::sampled_sa::SampledSa;
use nvwa_index::smem::{collect_smems, SmemConfig};
use nvwa_index::trace::TraceSink;

use crate::chain::Seed;

/// A seeding algorithm: read codes in, strand-resolved seeds out.
///
/// Implementations must report their index-block accesses on `trace` — that
/// trace is the seeding-unit workload of the hardware model.
pub trait SeedingAlgorithm {
    /// Human-readable name (for reports).
    fn name(&self) -> &'static str;

    /// Produces seeds for `read` (forward-strand 2-bit codes).
    fn seed<T: TraceSink>(&self, read: &[u8], trace: &mut T) -> Vec<Seed>;
}

/// FMD-index SMEM seeding (what BWA-MEM and NvWa's SUs run).
#[derive(Debug)]
pub struct SmemSeeder<'i> {
    fmd: &'i FmdIndex,
    ssa: &'i SampledSa,
    config: SmemConfig,
    /// Locate at most this many positions per SMEM.
    pub max_hits_per_smem: usize,
    /// Skip SMEMs with more occurrences than this.
    pub max_occ: u64,
}

impl<'i> SmemSeeder<'i> {
    /// Creates a seeder over a prebuilt FMD-index and sampled SA.
    pub fn new(fmd: &'i FmdIndex, ssa: &'i SampledSa, config: SmemConfig) -> SmemSeeder<'i> {
        SmemSeeder {
            fmd,
            ssa,
            config,
            max_hits_per_smem: 16,
            max_occ: 128,
        }
    }
}

impl SeedingAlgorithm for SmemSeeder<'_> {
    fn name(&self) -> &'static str {
        "fmd-smem"
    }

    fn seed<T: TraceSink>(&self, read: &[u8], trace: &mut T) -> Vec<Seed> {
        let mut seeds = Vec::new();
        let read_len = read.len();
        for smem in collect_smems(self.fmd, read, &self.config, trace) {
            if smem.occ() > self.max_occ {
                continue;
            }
            let take = (smem.occ() as usize).min(self.max_hits_per_smem);
            for i in 0..take {
                let rank = smem.interval.k + i as u64;
                let pos = self.ssa.locate(self.fmd.fm(), rank, trace);
                let Some(hit) = self.fmd.resolve_hit(pos as usize, smem.len()) else {
                    continue;
                };
                let (qs, qe) = if hit.is_rc {
                    (read_len - smem.query_end, read_len - smem.query_start)
                } else {
                    (smem.query_start, smem.query_end)
                };
                seeds.push(Seed {
                    query_start: qs,
                    query_end: qe,
                    ref_pos: hit.pos as u64,
                    is_rc: hit.is_rc,
                });
            }
        }
        seeds
    }
}

/// Darwin-style k-mer hash seeding: fixed-length exact seeds from the
/// pointer/position tables, both strands probed explicitly.
#[derive(Debug)]
pub struct KmerSeeder<'i> {
    index: &'i KmerIndex,
    /// Probe every `stride`-th read position (1 = every k-mer).
    pub stride: usize,
    /// Skip k-mers with more occurrences than this.
    pub max_occ: usize,
}

impl<'i> KmerSeeder<'i> {
    /// Creates a seeder over a prebuilt k-mer index.
    pub fn new(index: &'i KmerIndex) -> KmerSeeder<'i> {
        KmerSeeder {
            index,
            stride: 4,
            max_occ: 64,
        }
    }
}

impl SeedingAlgorithm for KmerSeeder<'_> {
    fn name(&self) -> &'static str {
        "kmer-hash"
    }

    fn seed<T: TraceSink>(&self, read: &[u8], trace: &mut T) -> Vec<Seed> {
        let k = self.index.k();
        if read.len() < k {
            return Vec::new();
        }
        let rc: Vec<u8> = read.iter().rev().map(|&c| 3 - c).collect();
        let mut seeds = Vec::new();
        for (codes, is_rc) in [(read, false), (rc.as_slice(), true)] {
            for qs in (0..=codes.len() - k).step_by(self.stride.max(1)) {
                let kmer = &codes[qs..qs + k];
                let hits = self.index.lookup(kmer, trace);
                if hits.is_empty() || hits.len() > self.max_occ {
                    continue;
                }
                for &pos in hits {
                    seeds.push(Seed {
                        query_start: qs,
                        query_end: qs + k,
                        ref_pos: pos as u64,
                        is_rc,
                    });
                }
            }
        }
        seeds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvwa_index::suffix_array::build_suffix_array;
    use nvwa_index::trace::{CountTrace, NullTrace};
    use nvwa_index::{bwt::Bwt, fm_index::FmIndex};

    fn rand_codes(len: usize, mut state: u64) -> Vec<u8> {
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) & 0b11) as u8
            })
            .collect()
    }

    struct Fixture {
        reference: Vec<u8>,
        fmd: FmdIndex,
        ssa: SampledSa,
        kmer: KmerIndex,
    }

    fn fixture() -> Fixture {
        let reference = rand_codes(20_000, 12);
        let doubled = FmdIndex::doubled_text(&reference);
        let sa = build_suffix_array(&doubled);
        let fm = FmIndex::from_bwt(Bwt::from_text_and_sa(&doubled, &sa));
        let fmd = FmdIndex::from_parts(fm, reference.len());
        let ssa = SampledSa::from_sa(&sa, 32);
        let kmer = KmerIndex::build(&reference, 12);
        Fixture {
            reference,
            fmd,
            ssa,
            kmer,
        }
    }

    #[test]
    fn both_seeders_anchor_an_exact_read() {
        let fx = fixture();
        let read = fx.reference[5_000..5_101].to_vec();
        let smem = SmemSeeder::new(&fx.fmd, &fx.ssa, SmemConfig::default());
        let kmer = KmerSeeder::new(&fx.kmer);
        for (name, seeds) in [
            ("smem", smem.seed(&read, &mut NullTrace)),
            ("kmer", kmer.seed(&read, &mut NullTrace)),
        ] {
            let anchored = seeds
                .iter()
                .any(|s| !s.is_rc && s.ref_pos as usize == 5_000 + s.query_start);
            assert!(anchored, "{name} failed to anchor the read: {seeds:?}");
        }
    }

    #[test]
    fn both_seeders_handle_reverse_strand() {
        let fx = fixture();
        let fwd = fx.reference[8_000..8_101].to_vec();
        let read: Vec<u8> = fwd.iter().rev().map(|&c| 3 - c).collect();
        let smem = SmemSeeder::new(&fx.fmd, &fx.ssa, SmemConfig::default());
        let kmer = KmerSeeder::new(&fx.kmer);
        for (name, seeds) in [
            ("smem", smem.seed(&read, &mut NullTrace)),
            ("kmer", kmer.seed(&read, &mut NullTrace)),
        ] {
            assert!(
                seeds.iter().any(|s| s.is_rc),
                "{name} found no reverse-strand seeds"
            );
        }
    }

    #[test]
    fn seeders_emit_memory_traces() {
        let fx = fixture();
        let read = fx.reference[100..201].to_vec();
        let smem = SmemSeeder::new(&fx.fmd, &fx.ssa, SmemConfig::default());
        let mut t1 = CountTrace::default();
        let _ = smem.seed(&read, &mut t1);
        assert!(t1.0 > 100, "smem trace {}", t1.0);
        let kmer = KmerSeeder::new(&fx.kmer);
        let mut t2 = CountTrace::default();
        let _ = kmer.seed(&read, &mut t2);
        assert!(t2.0 > 10, "kmer trace {}", t2.0);
    }

    #[test]
    fn kmer_seed_spans_are_k_long() {
        let fx = fixture();
        let read = fx.reference[300..401].to_vec();
        let kmer = KmerSeeder::new(&fx.kmer);
        for s in kmer.seed(&read, &mut NullTrace) {
            assert_eq!(s.query_end - s.query_start, 12);
        }
    }

    #[test]
    fn seeds_feed_the_shared_chainer() {
        use crate::chain::{chain_seeds, ChainConfig};
        let fx = fixture();
        let read = fx.reference[2_000..2_101].to_vec();
        let kmer = KmerSeeder::new(&fx.kmer);
        let seeds = kmer.seed(&read, &mut NullTrace);
        let chains = chain_seeds(&seeds, &ChainConfig::default());
        assert!(!chains.is_empty());
        let (rs, _) = chains[0].ref_span();
        assert!((rs as i64 - 2_000).abs() <= 101);
    }
}
