//! Serve-path telemetry: one shared [`MetricsRegistry`] plus an optional
//! Chrome-trace recorder.
//!
//! Every metric the `validate` bin's serve schema requires is registered
//! at construction (see `nvwa_telemetry::snapshot::SERVE_REQUIRED_*`), so
//! a snapshot taken before the first request is already schema-complete.
//! The registry sits behind one mutex — serving events are coarse
//! (per request / per batch), so contention is negligible next to an
//! alignment.

use std::sync::Mutex;
use std::time::Instant;

use crate::batcher::FlushReason;
use nvwa_telemetry::snapshot::{
    SERVE_REQUIRED_COUNTERS, SERVE_REQUIRED_GAUGES, SERVE_REQUIRED_HISTOGRAMS,
};
use nvwa_telemetry::{
    CounterId, GaugeId, HistogramId, JsonValue, MetricsRegistry, SnapshotMeta, TraceRecorder,
};

/// Trace process id for the serving layer (the simulator uses 0 and 1).
pub const PID_SERVE: u32 = 2;

struct Inner {
    registry: MetricsRegistry,
    trace: Option<TraceRecorder>,
    queue_depth_max: f64,
    admitted: CounterId,
    shed: CounterId,
    deadline_expired: CounterId,
    responses_ok: CounterId,
    protocol_errors: CounterId,
    batches_formed: CounterId,
    connections: CounterId,
    batch_fill: CounterId,
    batch_timeout: CounterId,
    batch_drain: CounterId,
    write_errors: CounterId,
    worker_panics: CounterId,
    sim_cycles: CounterId,
    seed_cache_hits: CounterId,
    seed_cache_lookups: CounterId,
    queue_depth: GaugeId,
    queue_depth_max_g: GaugeId,
    batch_size: HistogramId,
    e2e_latency_us: HistogramId,
    queue_wait_us: HistogramId,
    batch_exec_us: HistogramId,
}

/// Thread-safe serve metrics hub.
pub struct ServeMetrics {
    inner: Mutex<Inner>,
    /// Server start; all trace timestamps are relative to it.
    epoch: Instant,
}

impl ServeMetrics {
    /// Creates the hub with the full serve metric family pre-registered.
    /// `trace` enables the per-batch Chrome-trace recorder.
    pub fn new(queue_capacity: usize, workers: usize, trace: bool) -> ServeMetrics {
        let mut registry = MetricsRegistry::new();
        // Pre-register the schema-required names (plus extras) so even an
        // idle server emits a schema-complete serve snapshot.
        for name in SERVE_REQUIRED_COUNTERS {
            registry.counter(name);
        }
        for name in SERVE_REQUIRED_GAUGES {
            registry.gauge(name);
        }
        for name in SERVE_REQUIRED_HISTOGRAMS {
            registry.histogram(name);
        }
        let admitted = registry.counter("serve.requests_admitted");
        let shed = registry.counter("serve.requests_shed");
        let deadline_expired = registry.counter("serve.deadline_expired");
        let responses_ok = registry.counter("serve.responses_ok");
        let protocol_errors = registry.counter("serve.protocol_errors");
        let batches_formed = registry.counter("serve.batches_formed");
        let connections = registry.counter("serve.connections_accepted");
        let batch_fill = registry.counter("serve.batch_flush_fill");
        let batch_timeout = registry.counter("serve.batch_flush_timeout");
        let batch_drain = registry.counter("serve.batch_flush_drain");
        let write_errors = registry.counter("serve.write_errors");
        let worker_panics = registry.counter("serve.worker_panics");
        let sim_cycles = registry.counter("serve.sim_cycles_total");
        // Seeding occ-block cache effectiveness (extra counters, not part
        // of the required serve schema).
        let seed_cache_hits = registry.counter("serve.seed_cache_hits");
        let seed_cache_lookups = registry.counter("serve.seed_cache_lookups");
        let queue_depth = registry.gauge("serve.queue_depth");
        let queue_depth_max_g = registry.gauge("serve.queue_depth_max");
        let capacity_g = registry.gauge("serve.queue_capacity");
        registry.set_gauge(capacity_g, queue_capacity as f64);
        let workers_g = registry.gauge("serve.workers");
        registry.set_gauge(workers_g, workers as f64);
        let batch_size = registry.histogram("serve.batch_size");
        let e2e_latency_us = registry.histogram("serve.e2e_latency_us");
        let queue_wait_us = registry.histogram("serve.queue_wait_us");
        let batch_exec_us = registry.histogram("serve.batch_exec_us");
        let trace = trace.then(|| {
            let mut t = TraceRecorder::new();
            t.name_process(PID_SERVE, "nvwa-serve");
            t
        });
        ServeMetrics {
            inner: Mutex::new(Inner {
                registry,
                trace,
                queue_depth_max: 0.0,
                admitted,
                shed,
                deadline_expired,
                responses_ok,
                protocol_errors,
                batches_formed,
                connections,
                batch_fill,
                batch_timeout,
                batch_drain,
                write_errors,
                worker_panics,
                sim_cycles,
                seed_cache_hits,
                seed_cache_lookups,
                queue_depth,
                queue_depth_max_g,
                batch_size,
                e2e_latency_us,
                queue_wait_us,
                batch_exec_us,
            }),
            epoch: Instant::now(),
        }
    }

    /// Microseconds since server start (the trace time base).
    pub fn now_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e6
    }

    fn with(&self, f: impl FnOnce(&mut Inner)) {
        f(&mut self.inner.lock().unwrap());
    }

    /// One request admitted; `depth` is the queue depth just after.
    pub fn admitted(&self, depth: usize) {
        self.with(|m| {
            m.registry.inc(m.admitted, 1);
            m.queue_depth_max = m.queue_depth_max.max(depth as f64);
            let (q, qm, max) = (m.queue_depth, m.queue_depth_max_g, m.queue_depth_max);
            m.registry.set_gauge(q, depth as f64);
            m.registry.set_gauge(qm, max);
        });
    }

    /// One request shed by backpressure.
    pub fn shed(&self) {
        self.with(|m| m.registry.inc(m.shed, 1));
    }

    /// `n` requests expired before execution.
    pub fn deadline_expired(&self, n: u64) {
        self.with(|m| m.registry.inc(m.deadline_expired, n));
    }

    /// One connection accepted.
    pub fn connection_accepted(&self) {
        self.with(|m| m.registry.inc(m.connections, 1));
    }

    /// One malformed frame/request.
    pub fn protocol_error(&self) {
        self.with(|m| m.registry.inc(m.protocol_errors, 1));
    }

    /// One failed response write (client went away).
    pub fn write_error(&self) {
        self.with(|m| m.registry.inc(m.write_errors, 1));
    }

    /// One batch execution panicked (caught; every item answered `error`).
    pub fn worker_panic(&self) {
        self.with(|m| m.registry.inc(m.worker_panics, 1));
    }

    /// A batch shipped from the batcher; `depth` is the admission-queue
    /// depth observed by the batcher loop.
    pub fn batch_formed(&self, reason: FlushReason, size: usize, depth: usize) {
        self.with(|m| {
            m.registry.inc(m.batches_formed, 1);
            let reason_id = match reason {
                FlushReason::Fill => m.batch_fill,
                FlushReason::Timeout => m.batch_timeout,
                FlushReason::Drain => m.batch_drain,
            };
            m.registry.inc(reason_id, 1);
            let (h, q) = (m.batch_size, m.queue_depth);
            m.registry.observe(h, size as u64);
            m.registry.set_gauge(q, depth as f64);
        });
    }

    /// One `ok` response: end-to-end latency and pre-batch queue wait.
    pub fn response_ok(&self, e2e_us: f64, wait_us: f64) {
        self.with(|m| {
            m.registry.inc(m.responses_ok, 1);
            let (e, w) = (m.e2e_latency_us, m.queue_wait_us);
            m.registry.observe(e, e2e_us.max(0.0) as u64);
            m.registry.observe(w, wait_us.max(0.0) as u64);
        });
    }

    /// Batch execution finished on a worker: records the exec-time
    /// histogram, simulated cycles (hardware-in-the-loop) and, when
    /// tracing, a span on the worker's track.
    pub fn batch_executed(
        &self,
        worker: usize,
        label: &str,
        start_us: f64,
        dur_us: f64,
        sim_cycles: Option<u64>,
    ) {
        self.with(|m| {
            let h = m.batch_exec_us;
            m.registry.observe(h, dur_us.max(0.0) as u64);
            if let Some(c) = sim_cycles {
                m.registry.inc(m.sim_cycles, c);
            }
            if let Some(trace) = m.trace.as_mut() {
                trace.complete(PID_SERVE, worker as u32, label, start_us, dur_us);
            }
        });
    }

    /// Publishes a worker's seeding occ-block cache delta (`hits`,
    /// `lookups` since that worker last published).
    pub fn seed_cache(&self, hits: u64, lookups: u64) {
        self.with(|m| {
            m.registry.inc(m.seed_cache_hits, hits);
            m.registry.inc(m.seed_cache_lookups, lookups);
        });
    }

    /// Names a worker's trace track (no-op when tracing is off).
    pub fn name_worker(&self, worker: usize) {
        self.with(|m| {
            if let Some(trace) = m.trace.as_mut() {
                trace.name_thread(PID_SERVE, worker as u32, &format!("worker {worker}"));
            }
        });
    }

    /// The snapshot document (always serve-schema-complete).
    pub fn snapshot(&self, meta: &SnapshotMeta) -> JsonValue {
        self.inner.lock().unwrap().registry.snapshot(meta)
    }

    /// The Chrome trace JSON, when tracing was enabled.
    pub fn trace_json(&self) -> Option<String> {
        self.inner
            .lock()
            .unwrap()
            .trace
            .as_ref()
            .map(TraceRecorder::to_json)
    }

    /// Value of a counter by name (tests and the CLI summary).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .unwrap()
            .registry
            .counter_value(name)
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvwa_telemetry::snapshot::validate_serve_snapshot;

    #[test]
    fn idle_hub_emits_schema_complete_snapshot() {
        let metrics = ServeMetrics::new(128, 4, false);
        let meta = SnapshotMeta {
            host_threads: 4,
            git_rev: None,
        };
        validate_serve_snapshot(&metrics.snapshot(&meta)).unwrap();
        assert!(metrics.trace_json().is_none());
    }

    #[test]
    fn events_land_in_the_registry_and_trace() {
        let metrics = ServeMetrics::new(8, 1, true);
        metrics.admitted(3);
        metrics.admitted(5);
        metrics.shed();
        metrics.batch_formed(FlushReason::Fill, 4, 1);
        metrics.response_ok(1500.0, 300.0);
        metrics.batch_executed(0, "batch b0 n4", 10.0, 250.0, Some(777));
        let meta = SnapshotMeta {
            host_threads: 1,
            git_rev: None,
        };
        let doc = metrics.snapshot(&meta);
        validate_serve_snapshot(&doc).unwrap();
        assert_eq!(metrics.counter("serve.requests_admitted"), 2);
        assert_eq!(metrics.counter("serve.requests_shed"), 1);
        assert_eq!(metrics.counter("serve.sim_cycles_total"), 777);
        let gauges = doc.get("gauges").unwrap();
        assert_eq!(
            gauges.get("serve.queue_depth_max").unwrap().as_num(),
            Some(5.0)
        );
        let trace = metrics.trace_json().unwrap();
        assert!(trace.contains("batch b0 n4"));
        nvwa_telemetry::snapshot::validate_chrome_trace(&JsonValue::parse(&trace).unwrap())
            .unwrap();
    }
}
