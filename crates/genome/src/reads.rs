//! Read simulation (DWGSIM substitute).
//!
//! The paper samples 200 000 single-ended 101 bp reads from NA12878 and uses
//! DWGSIM to generate reads for five further species (Sec. V-F). This module
//! provides the equivalent: reads are sampled uniformly from a
//! [`ReferenceGenome`], on either strand, with an Illumina-like error model
//! (substitutions dominate, rare short indels) for short reads and a noisier
//! long-read model for the ≥ 1 kbp experiments.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::base::Base;
use crate::reference::ReferenceGenome;
use crate::sequence::DnaSeq;

/// Strand of origin for a simulated read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strand {
    /// Read matches the reference orientation.
    Forward,
    /// Read is the reverse complement of the reference.
    Reverse,
}

/// Ground truth about where a simulated read came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadOrigin {
    /// Flat reference offset of the first reference base covered.
    pub flat_pos: usize,
    /// Strand the read was drawn from.
    pub strand: Strand,
    /// Number of substitution errors introduced.
    pub substitutions: u32,
    /// Number of inserted bases introduced.
    pub insertions: u32,
    /// Number of deleted bases introduced.
    pub deletions: u32,
}

/// A simulated read: sequence plus ground-truth origin.
#[derive(Debug, Clone, PartialEq)]
pub struct Read {
    /// Sequential read id (`read_idx` in the paper's Table III interface).
    pub id: u64,
    /// The read sequence.
    pub seq: DnaSeq,
    /// Ground truth, for accuracy evaluation.
    pub origin: ReadOrigin,
}

/// Error/length model for the simulator.
///
/// # Examples
///
/// ```
/// use nvwa_genome::ReadSimParams;
/// let p = ReadSimParams::illumina_101();
/// assert_eq!(p.read_len, 101);
/// let l = ReadSimParams::long_read(10_000);
/// assert!(l.sub_rate > p.sub_rate);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadSimParams {
    /// Read length in bases.
    pub read_len: usize,
    /// Per-base substitution probability.
    pub sub_rate: f64,
    /// Per-base insertion probability.
    pub ins_rate: f64,
    /// Per-base deletion probability.
    pub del_rate: f64,
}

impl ReadSimParams {
    /// 101 bp Illumina-like short reads (matches the NA12878 dataset shape:
    /// ~1 % substitutions, rare indels).
    pub fn illumina_101() -> ReadSimParams {
        ReadSimParams {
            read_len: 101,
            sub_rate: 0.010,
            ins_rate: 0.0004,
            del_rate: 0.0004,
        }
    }

    /// Long reads (≥ 1 kbp) with a third-generation error profile.
    pub fn long_read(read_len: usize) -> ReadSimParams {
        ReadSimParams {
            read_len,
            sub_rate: 0.04,
            ins_rate: 0.02,
            del_rate: 0.02,
        }
    }
}

/// Draws reads from a reference genome with an error model.
///
/// Deterministic in `(genome, params, seed)`.
///
/// # Examples
///
/// ```
/// use nvwa_genome::{ReferenceGenome, ReferenceParams, ReadSimulator, ReadSimParams};
/// let genome = ReferenceGenome::synthesize(&ReferenceParams::small_test(), 1);
/// let mut sim = ReadSimulator::new(&genome, ReadSimParams::illumina_101(), 2);
/// let reads = sim.simulate_reads(10);
/// assert_eq!(reads.len(), 10);
/// assert!(reads.iter().all(|r| r.seq.len() == 101));
/// ```
#[derive(Debug)]
pub struct ReadSimulator<'g> {
    genome: &'g ReferenceGenome,
    params: ReadSimParams,
    rng: StdRng,
    next_id: u64,
}

impl<'g> ReadSimulator<'g> {
    /// Creates a simulator over `genome`.
    ///
    /// # Panics
    ///
    /// Panics if the genome is shorter than twice the read length (there must
    /// be room to sample reads including deletions).
    pub fn new(genome: &'g ReferenceGenome, params: ReadSimParams, seed: u64) -> ReadSimulator<'g> {
        assert!(
            genome.total_len() >= params.read_len * 2,
            "genome too short ({} bp) for {} bp reads",
            genome.total_len(),
            params.read_len
        );
        ReadSimulator {
            genome,
            params,
            rng: StdRng::seed_from_u64(seed),
            next_id: 0,
        }
    }

    /// The simulation parameters.
    pub fn params(&self) -> &ReadSimParams {
        &self.params
    }

    /// Simulates a single read.
    pub fn simulate_read(&mut self) -> Read {
        let len = self.params.read_len;
        // Reserve slack so deletions never run off the genome end.
        let slack = (len / 4).max(8);
        let max_start = self.genome.total_len() - len - slack;
        let flat_pos = self.rng.gen_range(0..=max_start);
        let strand = if self.rng.gen_bool(0.5) {
            Strand::Forward
        } else {
            Strand::Reverse
        };

        let mut seq = DnaSeq::with_capacity(len);
        let mut subs = 0u32;
        let mut ins = 0u32;
        let mut dels = 0u32;
        let mut ref_cursor = flat_pos;
        let flat = self.genome.flat();
        while seq.len() < len && ref_cursor < flat.len() {
            let r = self.rng.gen::<f64>();
            if r < self.params.ins_rate {
                // Insert a random base, do not consume reference.
                seq.push(random_base(&mut self.rng));
                ins += 1;
            } else if r < self.params.ins_rate + self.params.del_rate {
                // Skip a reference base.
                ref_cursor += 1;
                dels += 1;
            } else if r < self.params.ins_rate + self.params.del_rate + self.params.sub_rate {
                let orig = flat.base(ref_cursor);
                seq.push(mutate_base(orig, &mut self.rng));
                ref_cursor += 1;
                subs += 1;
            } else {
                seq.push(flat.base(ref_cursor));
                ref_cursor += 1;
            }
        }
        // Pad in the (vanishingly rare) case we ran off the genome.
        while seq.len() < len {
            seq.push(random_base(&mut self.rng));
        }

        let seq = match strand {
            Strand::Forward => seq,
            Strand::Reverse => seq.revcomp(),
        };
        let id = self.next_id;
        self.next_id += 1;
        Read {
            id,
            seq,
            origin: ReadOrigin {
                flat_pos,
                strand,
                substitutions: subs,
                insertions: ins,
                deletions: dels,
            },
        }
    }

    /// Simulates `n` reads.
    pub fn simulate_reads(&mut self, n: usize) -> Vec<Read> {
        (0..n).map(|_| self.simulate_read()).collect()
    }
}

fn random_base(rng: &mut StdRng) -> Base {
    Base::from_code(rng.gen_range(0..4u8)).expect("code in range")
}

fn mutate_base(b: Base, rng: &mut StdRng) -> Base {
    let shift = rng.gen_range(1..4u8);
    Base::from_code((b.code() + shift) % 4).expect("code in range")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::ReferenceParams;

    fn test_genome() -> ReferenceGenome {
        ReferenceGenome::synthesize(&ReferenceParams::small_test(), 7)
    }

    #[test]
    fn reads_have_requested_length_and_sequential_ids() {
        let g = test_genome();
        let mut sim = ReadSimulator::new(&g, ReadSimParams::illumina_101(), 1);
        let reads = sim.simulate_reads(50);
        for (i, r) in reads.iter().enumerate() {
            assert_eq!(r.id, i as u64);
            assert_eq!(r.seq.len(), 101);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let g = test_genome();
        let a = ReadSimulator::new(&g, ReadSimParams::illumina_101(), 5).simulate_reads(20);
        let b = ReadSimulator::new(&g, ReadSimParams::illumina_101(), 5).simulate_reads(20);
        assert_eq!(a, b);
        let c = ReadSimulator::new(&g, ReadSimParams::illumina_101(), 6).simulate_reads(20);
        assert_ne!(a, c);
    }

    #[test]
    fn error_free_forward_reads_match_reference() {
        let g = test_genome();
        let params = ReadSimParams {
            read_len: 80,
            sub_rate: 0.0,
            ins_rate: 0.0,
            del_rate: 0.0,
        };
        let mut sim = ReadSimulator::new(&g, params, 3);
        for _ in 0..30 {
            let r = sim.simulate_read();
            let expected = g.flat().subseq(r.origin.flat_pos, r.origin.flat_pos + 80);
            let observed = match r.origin.strand {
                Strand::Forward => r.seq.clone(),
                Strand::Reverse => r.seq.revcomp(),
            };
            assert_eq!(observed, expected);
            assert_eq!(r.origin.substitutions, 0);
        }
    }

    #[test]
    fn error_rates_are_roughly_honoured() {
        let g = ReferenceGenome::synthesize(
            &ReferenceParams {
                total_len: 200_000,
                ..ReferenceParams::default()
            },
            2,
        );
        let mut sim = ReadSimulator::new(&g, ReadSimParams::illumina_101(), 9);
        let reads = sim.simulate_reads(2000);
        let total_bases: u64 = reads.iter().map(|r| r.seq.len() as u64).sum();
        let total_subs: u64 = reads.iter().map(|r| r.origin.substitutions as u64).sum();
        let rate = total_subs as f64 / total_bases as f64;
        assert!(
            (rate - 0.010).abs() < 0.002,
            "substitution rate {rate} too far from 0.010"
        );
    }

    #[test]
    fn long_reads_supported() {
        let g = ReferenceGenome::synthesize(
            &ReferenceParams {
                total_len: 100_000,
                ..ReferenceParams::default()
            },
            4,
        );
        let mut sim = ReadSimulator::new(&g, ReadSimParams::long_read(5_000), 8);
        let r = sim.simulate_read();
        assert_eq!(r.seq.len(), 5_000);
        assert!(r.origin.substitutions > 0 || r.origin.insertions > 0 || r.origin.deletions > 0);
    }

    #[test]
    #[should_panic(expected = "genome too short")]
    fn rejects_tiny_genome() {
        let g = test_genome();
        let _ = ReadSimulator::new(&g, ReadSimParams::long_read(50_000), 0);
    }
}
