//! Fig. 2 — regenerates the per-read phase breakdown and times the
//! software-profiling pipeline that produces it.

use criterion::{criterion_group, criterion_main, Criterion};
use nvwa_core::experiments::{fig2, Scale};

fn bench(c: &mut Criterion) {
    let fig = fig2::run(Scale::Quick);
    println!("{fig}");
    let mut group = c.benchmark_group("fig2");
    group.sample_size(10);
    group.bench_function("profile_breakdown_quick", |b| {
        b.iter(|| std::hint::black_box(fig2::run(Scale::Quick)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
