//! Experiment drivers: one per table and figure of the paper.
//!
//! Each driver reruns the corresponding experiment on this reproduction's
//! substrates and returns a printable result whose rows/series mirror what
//! the paper plots. The `nvwa-bench` crate wraps every driver in a
//! Criterion bench and in the `repro` binary; `EXPERIMENTS.md` records the
//! measured-vs-paper comparison.
//!
//! | Driver | Paper artifact |
//! |---|---|
//! | [`fig2`] | Fig. 2 — per-read phase breakdown |
//! | [`fig5`] | Fig. 5/6 — Read-in-Batch vs One-Cycle schedules, PopCount tree |
//! | [`fig7`] | Fig. 7/8 — systolic example and latency-vs-PEs curves |
//! | [`fig9`] | Fig. 9/10 — hybrid-vs-uniform toy and Coordinator walkthrough |
//! | [`fig11`] | Fig. 11 — end-to-end throughput + ablations + headline |
//! | [`fig12`] | Fig. 12 — utilization traces and allocation correctness |
//! | [`fig13`] | Fig. 13 — buffer-depth and interval-count design space |
//! | [`fig14`] | Fig. 14 — multi-species sensitivity (short + long reads) |
//! | [`tables`] | Tables I–III — configuration, area/power, interface |

pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig2;
pub mod fig5;
pub mod fig7;
pub mod fig9;
pub mod tables;

/// How much work an experiment driver should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale runs for tests and CI.
    Quick,
    /// The full evaluation used by the `repro` binary and benches.
    Full,
}

impl Scale {
    /// Picks between a quick and a full value.
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}
