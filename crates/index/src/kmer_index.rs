//! Darwin-style k-mer hash index.
//!
//! Darwin/Darwin-WGA (and GenAx) seed with a hash of reference k-mers rather
//! than an FM-index: a *pointer table* indexed by the packed k-mer and a
//! *position table* holding the occurrence lists (CSR layout). A lookup costs
//! two pointer-table reads plus `P` position reads — the paper's footnote 3
//! quotes exactly this `2 + P` DRAM access count. This module exists to
//! exercise NvWa's loosely coupled seeding interface with a second algorithm.

use crate::trace::{MemAddr, TraceSink};

/// A k-mer hash index over a forward reference (2-bit codes).
#[derive(Debug, Clone)]
pub struct KmerIndex {
    k: usize,
    /// CSR row pointers: `4^k + 1` entries.
    pointers: Vec<u32>,
    /// Occurrence positions, grouped by k-mer.
    positions: Vec<u32>,
}

impl KmerIndex {
    /// Builds an index of all k-mers of `text`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `k > 15` (table would exceed memory), or
    /// `text.len() < k`.
    pub fn build(text: &[u8], k: usize) -> KmerIndex {
        assert!(k > 0 && k <= 15, "k must be in 1..=15");
        assert!(text.len() >= k, "text shorter than k");
        assert!(text.iter().all(|&c| c < 4), "codes must be in 0..4");
        let table_len = 1usize << (2 * k);
        let n_kmers = text.len() - k + 1;

        // Counting pass.
        let mut counts = vec![0u32; table_len + 1];
        let mask = (table_len - 1) as u64;
        let mut key: u64 = 0;
        for (i, &c) in text.iter().enumerate() {
            key = ((key << 2) | c as u64) & mask;
            if i + 1 >= k {
                counts[key as usize + 1] += 1;
            }
        }
        for i in 1..=table_len {
            counts[i] += counts[i - 1];
        }

        // Fill pass.
        let mut positions = vec![0u32; n_kmers];
        let mut cursors = counts.clone();
        let mut key: u64 = 0;
        for (i, &c) in text.iter().enumerate() {
            key = ((key << 2) | c as u64) & mask;
            if i + 1 >= k {
                let start = i + 1 - k;
                let slot = &mut cursors[key as usize];
                positions[*slot as usize] = start as u32;
                *slot += 1;
            }
        }
        KmerIndex {
            k,
            pointers: counts,
            positions,
        }
    }

    /// The k-mer length.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Approximate footprint in bytes (the `O(4^k)` memory cost the paper
    /// notes as this algorithm's drawback).
    pub fn footprint_bytes(&self) -> usize {
        self.pointers.len() * 4 + self.positions.len() * 4
    }

    /// Packs a k-mer into its table key.
    ///
    /// # Panics
    ///
    /// Panics if `kmer.len() != k` or any code is ≥ 4.
    pub fn pack(&self, kmer: &[u8]) -> u64 {
        assert_eq!(kmer.len(), self.k, "k-mer length mismatch");
        kmer.iter().fold(0u64, |acc, &c| {
            assert!(c < 4, "codes must be in 0..4");
            (acc << 2) | c as u64
        })
    }

    /// Looks up all occurrence positions of `kmer`.
    ///
    /// Records `2 + P` accesses on `trace`: two pointer-table reads and one
    /// per returned position.
    pub fn lookup<'a, T: TraceSink>(&'a self, kmer: &[u8], trace: &mut T) -> &'a [u32] {
        let key = self.pack(kmer) as usize;
        trace.record(MemAddr::kmer_entry(key as u64));
        trace.record(MemAddr::kmer_entry(key as u64 + 1));
        let (start, end) = (self.pointers[key] as usize, self.pointers[key + 1] as usize);
        for p in start..end {
            trace.record(MemAddr::kmer_entry((self.pointers.len() + p) as u64));
        }
        &self.positions[start..end]
    }

    /// Number of occurrences of `kmer` without touching the position table
    /// (one pointer-table access pair).
    pub fn count<T: TraceSink>(&self, kmer: &[u8], trace: &mut T) -> usize {
        let key = self.pack(kmer) as usize;
        trace.record(MemAddr::kmer_entry(key as u64));
        trace.record(MemAddr::kmer_entry(key as u64 + 1));
        (self.pointers[key + 1] - self.pointers[key]) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{CountTrace, NullTrace};

    fn rand_codes(len: usize, mut state: u64) -> Vec<u8> {
        (0..len)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) & 0b11) as u8
            })
            .collect()
    }

    #[test]
    fn lookup_matches_naive_scan() {
        let text = rand_codes(500, 31);
        let k = 6;
        let index = KmerIndex::build(&text, k);
        for start in (0..text.len() - k).step_by(17) {
            let kmer = &text[start..start + k];
            let got = index.lookup(kmer, &mut NullTrace);
            let want: Vec<u32> = text
                .windows(k)
                .enumerate()
                .filter(|(_, w)| *w == kmer)
                .map(|(i, _)| i as u32)
                .collect();
            assert_eq!(got, want.as_slice(), "k-mer at {start}");
        }
    }

    #[test]
    fn absent_kmer_is_empty() {
        let text = vec![0u8; 100]; // all A
        let index = KmerIndex::build(&text, 5);
        assert!(index.lookup(&[0, 0, 0, 0, 1], &mut NullTrace).is_empty());
        assert_eq!(index.count(&[1, 1, 1, 1, 1], &mut NullTrace), 0);
    }

    #[test]
    fn trace_counts_two_plus_p() {
        let text = vec![0u8; 50]; // "AAAA..." → k-mer AAAA occurs 47 times
        let index = KmerIndex::build(&text, 4);
        let mut trace = CountTrace::default();
        let hits = index.lookup(&[0, 0, 0, 0], &mut trace);
        assert_eq!(hits.len(), 47);
        assert_eq!(trace.0, 2 + 47);
        let mut trace = CountTrace::default();
        let _ = index.count(&[0, 0, 0, 0], &mut trace);
        assert_eq!(trace.0, 2);
    }

    #[test]
    fn footprint_is_4k_dominated() {
        let text = rand_codes(1000, 8);
        let index = KmerIndex::build(&text, 8);
        // Pointer table: (4^8 + 1) * 4 bytes dominates the 1000 positions.
        assert!(index.footprint_bytes() > (1 << 16) * 4);
    }

    #[test]
    fn all_positions_accounted_for() {
        let text = rand_codes(256, 77);
        let k = 5;
        let index = KmerIndex::build(&text, k);
        let mut total = 0usize;
        let mut seen = std::collections::HashSet::new();
        for start in 0..=(text.len() - k) {
            let kmer = &text[start..start + k];
            let key = index.pack(kmer);
            if seen.insert(key) {
                total += index.lookup(kmer, &mut NullTrace).len();
            }
        }
        assert_eq!(total, text.len() - k + 1);
    }

    #[test]
    #[should_panic(expected = "k must be in 1..=15")]
    fn oversized_k_panics() {
        let _ = KmerIndex::build(&[0, 1, 2], 16);
    }
}
