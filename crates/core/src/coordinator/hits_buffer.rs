//! The double-buffered Hits Buffer (Fig. 10).
//!
//! SUs push hits into the *Store Buffer* (SB); the Hits Allocator consumes
//! batches from the *Processing Buffer* (PB). When the SB reaches its switch
//! threshold and the PB is drained, the two swap roles.
//!
//! **Fragmentation handling**: hits that could not be allocated in a round
//! stay in the PB. After each round the batch is compacted — allocated
//! entries first, survivors at the end of the batch region — and the
//! `offset` watermark advances past the allocated ones, so survivors are
//! re-read by the next round exactly as the paper's nine-step dataflow
//! describes.

/// Error returned when pushing to a full Store Buffer; carries the hit back
/// so the producer can stall and retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferFull<T>(pub T);

/// Outcome of one allocation round against the Processing Buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundStats {
    /// Hits allocated in this round.
    pub allocated: usize,
    /// Hits left fragmented (to be retried).
    pub unallocated: usize,
}

/// The Store/Processing double buffer.
#[derive(Debug, Clone)]
pub struct HitsBuffer<T> {
    depth: usize,
    switch_threshold: f64,
    store: Vec<T>,
    processing: Vec<T>,
    offset: usize,
    switches: u64,
}

impl<T: Clone> HitsBuffer<T> {
    /// Creates a buffer pair of `depth` entries each, switching when the SB
    /// reaches `switch_threshold` (the paper uses 75 %).
    ///
    /// # Panics
    ///
    /// Panics if `depth == 0` or the threshold is outside `(0, 1]`.
    pub fn new(depth: usize, switch_threshold: f64) -> HitsBuffer<T> {
        assert!(depth > 0, "buffer depth must be positive");
        assert!(
            switch_threshold > 0.0 && switch_threshold <= 1.0,
            "switch threshold must be in (0, 1]"
        );
        HitsBuffer {
            depth,
            switch_threshold,
            store: Vec::with_capacity(depth),
            processing: Vec::new(),
            offset: 0,
            switches: 0,
        }
    }

    /// Buffer depth (entries per buffer).
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Pushes a hit into the Store Buffer.
    ///
    /// # Errors
    ///
    /// Returns [`BufferFull`] (carrying the hit) when the SB is full — the
    /// producing SU must suspend, exactly the blocking state of Fig. 13a.
    pub fn push(&mut self, hit: T) -> Result<(), BufferFull<T>> {
        if self.store.len() >= self.depth {
            return Err(BufferFull(hit));
        }
        self.store.push(hit);
        Ok(())
    }

    /// Current Store Buffer occupancy.
    pub fn store_len(&self) -> usize {
        self.store.len()
    }

    /// Store Buffer fill fraction.
    pub fn store_fill(&self) -> f64 {
        self.store.len() as f64 / self.depth as f64
    }

    /// Unconsumed hits remaining in the Processing Buffer.
    pub fn processing_remaining(&self) -> usize {
        self.processing.len() - self.offset
    }

    /// Whether the PB is fully drained (a precondition for switching).
    pub fn processing_drained(&self) -> bool {
        self.offset >= self.processing.len()
    }

    /// Whether the SB has reached the switch threshold.
    pub fn store_ready(&self) -> bool {
        self.store_fill() >= self.switch_threshold
    }

    /// Number of buffer switches performed.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Whether a switch should happen now (threshold reached, PB drained).
    /// `force` relaxes the threshold (used to drain the tail of a run).
    pub fn should_switch(&self, force: bool) -> bool {
        self.processing_drained() && !self.store.is_empty() && (force || self.store_ready())
    }

    /// Swaps the buffers. Returns `false` (and does nothing) if the PB is
    /// not drained or the SB is empty.
    pub fn switch(&mut self) -> bool {
        if !self.processing_drained() || self.store.is_empty() {
            return false;
        }
        self.processing.clear();
        std::mem::swap(&mut self.store, &mut self.processing);
        self.offset = 0;
        self.switches += 1;
        true
    }

    /// The next batch the allocator will see: up to `batch_size` hits from
    /// the current offset.
    pub fn peek_batch(&self, batch_size: usize) -> &[T] {
        let end = (self.offset + batch_size).min(self.processing.len());
        &self.processing[self.offset..end]
    }

    /// Completes an allocation round: `allocated[i]` says whether batch slot
    /// `i` (as returned by [`peek_batch`]) was dispatched. Allocated entries
    /// are compacted to the top of the batch region, survivors to the
    /// bottom, and the offset advances past the allocated ones.
    ///
    /// [`peek_batch`]: HitsBuffer::peek_batch
    ///
    /// # Panics
    ///
    /// Panics if `allocated.len()` exceeds the current batch.
    pub fn complete_round(&mut self, allocated: &[bool]) -> RoundStats {
        let end = self.offset + allocated.len();
        assert!(end <= self.processing.len(), "round exceeds batch");
        let batch = self.processing[self.offset..end].to_vec();
        let mut write = self.offset;
        for (slot, hit) in batch.iter().enumerate() {
            if allocated[slot] {
                self.processing[write] = hit.clone();
                write += 1;
            }
        }
        let n_alloc = write - self.offset;
        for (slot, hit) in batch.iter().enumerate() {
            if !allocated[slot] {
                self.processing[write] = hit.clone();
                write += 1;
            }
        }
        self.offset += n_alloc;
        RoundStats {
            allocated: n_alloc,
            unallocated: allocated.len() - n_alloc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_until_full_then_blocks() {
        let mut buf: HitsBuffer<u32> = HitsBuffer::new(4, 0.75);
        for i in 0..4 {
            buf.push(i).unwrap();
        }
        assert_eq!(buf.push(99), Err(BufferFull(99)));
        assert_eq!(buf.store_len(), 4);
    }

    #[test]
    fn switch_requires_threshold_and_drained_pb() {
        let mut buf: HitsBuffer<u32> = HitsBuffer::new(4, 0.75);
        buf.push(1).unwrap();
        buf.push(2).unwrap();
        assert!(!buf.should_switch(false)); // 50% < 75%
        assert!(buf.should_switch(true)); // forced drain
        buf.push(3).unwrap();
        assert!(buf.should_switch(false)); // 75% reached, PB empty
        assert!(buf.switch());
        assert_eq!(buf.processing_remaining(), 3);
        assert_eq!(buf.store_len(), 0);
        assert_eq!(buf.switches(), 1);
    }

    #[test]
    fn cannot_switch_with_undrained_pb() {
        let mut buf: HitsBuffer<u32> = HitsBuffer::new(4, 0.5);
        buf.push(1).unwrap();
        buf.push(2).unwrap();
        assert!(buf.switch());
        buf.push(3).unwrap();
        buf.push(4).unwrap();
        // PB still holds 2 unconsumed hits.
        assert!(!buf.should_switch(true));
        assert!(!buf.switch());
    }

    #[test]
    fn fig10_fragmentation_walkthrough() {
        // Fig. 10's example: batch (7, 29, 40, 103); hits 7, 29 and 103 are
        // allocated, 40 is not. After the round the offset is 3 and hit 40
        // is re-read by the next round.
        let mut buf: HitsBuffer<u32> = HitsBuffer::new(8, 0.5);
        for len in [7u32, 29, 40, 103] {
            buf.push(len).unwrap();
        }
        assert!(buf.switch());
        let batch = buf.peek_batch(4).to_vec();
        assert_eq!(batch, vec![7, 29, 40, 103]);
        let stats = buf.complete_round(&[true, true, false, true]);
        assert_eq!(
            stats,
            RoundStats {
                allocated: 3,
                unallocated: 1
            }
        );
        // Offset is 3; the survivor is at the bottom of the batch region.
        assert_eq!(buf.processing_remaining(), 1);
        assert_eq!(buf.peek_batch(4), &[40]);
        let stats = buf.complete_round(&[true]);
        assert_eq!(stats.allocated, 1);
        assert!(buf.processing_drained());
    }

    #[test]
    fn survivors_preserve_relative_order() {
        let mut buf: HitsBuffer<u32> = HitsBuffer::new(8, 0.5);
        for v in [10u32, 20, 30, 40, 50] {
            buf.push(v).unwrap();
        }
        buf.switch();
        let _ = buf.peek_batch(5);
        buf.complete_round(&[false, true, false, true, false]);
        assert_eq!(buf.peek_batch(5), &[10, 30, 50]);
    }

    #[test]
    fn zero_allocation_round_makes_no_progress() {
        let mut buf: HitsBuffer<u32> = HitsBuffer::new(4, 0.5);
        buf.push(1).unwrap();
        buf.push(2).unwrap();
        buf.switch();
        let stats = buf.complete_round(&[false, false]);
        assert_eq!(stats.allocated, 0);
        assert_eq!(buf.processing_remaining(), 2);
        assert_eq!(buf.peek_batch(4), &[1, 2]);
    }

    #[test]
    #[should_panic(expected = "buffer depth must be positive")]
    fn zero_depth_panics() {
        let _: HitsBuffer<u32> = HitsBuffer::new(0, 0.5);
    }
}
