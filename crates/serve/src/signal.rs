//! Minimal SIGINT latch — no external deps.
//!
//! `std` links `libc` on Unix, so binding `signal(2)` directly costs
//! nothing; the handler only flips an `AtomicBool` (async-signal-safe).
//! On non-Unix targets the latch exists but is never set by a signal.

use std::sync::atomic::{AtomicBool, Ordering};

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod unix {
    use super::{AtomicBool, Ordering, INTERRUPTED};

    pub(super) static INSTALLED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(_signum: i32) {
        INTERRUPTED.store(true, Ordering::SeqCst);
    }

    pub(super) fn install() {
        if INSTALLED.swap(true, Ordering::SeqCst) {
            return;
        }
        let handler = on_signal as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

/// Installs the SIGINT/SIGTERM latch (idempotent; no-op off Unix).
pub fn install() {
    #[cfg(unix)]
    unix::install();
}

/// Whether SIGINT/SIGTERM has been received since [`install`].
pub fn interrupted() -> bool {
    INTERRUPTED.load(Ordering::SeqCst)
}

/// Test hook: simulate an interrupt.
pub fn raise() {
    INTERRUPTED.store(true, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latch_observes_raise() {
        install();
        raise();
        assert!(interrupted());
    }
}
