//! Snapshot metadata and schema validation for the repo's JSON artifacts.
//!
//! Three file kinds are validated here (all produced or consumed by the
//! binaries and CI):
//!
//! * **metrics snapshots** (`--metrics-out`): the versioned document built
//!   by [`crate::MetricsRegistry::snapshot`];
//! * **bench reports** (`BENCH_*.json` from the `perf` binary);
//! * **Chrome traces** (`--trace-out`);
//! * **live observability documents**: the windowed [`crate::SloView`]
//!   and flight-recorder summary embedded in serve `stats` responses,
//!   standalone flight-recorder dumps (`"kind": "nvwa-flight"`), and
//!   per-request span logs (`"kind": "nvwa-spanlog"`).

use crate::json::JsonValue;
use crate::spans::RequestSpans;

/// Run metadata recorded into every metrics snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SnapshotMeta {
    /// Host thread count the run used (the evaluation harness's pool).
    pub host_threads: usize,
    /// Git revision of the tree, when discoverable.
    pub git_rev: Option<String>,
}

impl SnapshotMeta {
    /// Collects metadata from the environment: `host_threads` from the
    /// caller (thread-pool resolution lives in `nvwa-sim::par`, which this
    /// crate cannot depend on) and the git revision from the working
    /// directory.
    pub fn collect(host_threads: usize) -> SnapshotMeta {
        SnapshotMeta {
            host_threads,
            git_rev: git_revision(),
        }
    }
}

/// Best-effort git revision: walks up from the current directory to the
/// first `.git/HEAD` and resolves one level of `ref:` indirection
/// (loose ref file, then `packed-refs`). Returns `None` outside a
/// repository — never an error.
pub fn git_revision() -> Option<String> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let head = dir.join(".git").join("HEAD");
        if let Ok(content) = std::fs::read_to_string(&head) {
            let content = content.trim();
            if let Some(refname) = content.strip_prefix("ref: ") {
                if let Ok(rev) = std::fs::read_to_string(dir.join(".git").join(refname)) {
                    return Some(rev.trim().to_string());
                }
                if let Ok(packed) = std::fs::read_to_string(dir.join(".git").join("packed-refs")) {
                    for line in packed.lines() {
                        if let Some(rev) = line.strip_suffix(refname) {
                            return Some(rev.trim().to_string());
                        }
                    }
                }
                return None;
            }
            return Some(content.to_string());
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn require<'a>(doc: &'a JsonValue, key: &str, what: &str) -> Result<&'a JsonValue, String> {
    doc.get(key)
        .ok_or_else(|| format!("{what}: missing key {key:?}"))
}

fn require_num(doc: &JsonValue, key: &str, what: &str) -> Result<f64, String> {
    require(doc, key, what)?
        .as_num()
        .ok_or_else(|| format!("{what}: {key:?} must be a number"))
}

fn require_numeric_object(doc: &JsonValue, key: &str, what: &str) -> Result<(), String> {
    let obj = require(doc, key, what)?
        .as_obj()
        .ok_or_else(|| format!("{what}: {key:?} must be an object"))?;
    for (name, value) in obj {
        if value.as_num().is_none() {
            return Err(format!("{what}: {key}.{name} must be a number"));
        }
    }
    Ok(())
}

/// Validates a metrics snapshot against schema version 1.
///
/// # Errors
///
/// Returns a message naming the first violated constraint.
pub fn validate_metrics_snapshot(doc: &JsonValue) -> Result<(), String> {
    let what = "metrics snapshot";
    let kind = require(doc, "kind", what)?.as_str();
    if kind != Some("nvwa-metrics") {
        return Err(format!(
            "{what}: kind must be \"nvwa-metrics\", got {kind:?}"
        ));
    }
    let version = require_num(doc, "schema_version", what)?;
    if version != 1.0 {
        return Err(format!("{what}: unsupported schema_version {version}"));
    }
    match require(doc, "git_rev", what)? {
        JsonValue::Null | JsonValue::Str(_) => {}
        other => {
            return Err(format!(
                "{what}: git_rev must be string or null, got {other}"
            ))
        }
    }
    let threads = require_num(doc, "host_threads", what)?;
    if threads < 1.0 || threads.fract() != 0.0 {
        return Err(format!("{what}: host_threads must be a positive integer"));
    }
    require_numeric_object(doc, "counters", what)?;
    require_numeric_object(doc, "gauges", what)?;
    let histograms = require(doc, "histograms", what)?
        .as_obj()
        .ok_or_else(|| format!("{what}: histograms must be an object"))?;
    for (name, hist) in histograms {
        let count =
            require_num(hist, "count", what).map_err(|e| format!("{e} (histogram {name})"))?;
        for key in ["p50", "p90", "p99", "min", "max"] {
            match require(hist, key, what).map_err(|e| format!("{e} (histogram {name})"))? {
                JsonValue::Null if count == 0.0 => {}
                JsonValue::Num(_) if count > 0.0 => {}
                other => {
                    return Err(format!(
                        "{what}: histogram {name}.{key} inconsistent with count {count}: {other}"
                    ))
                }
            }
        }
        let buckets = require(hist, "buckets", what)?
            .as_arr()
            .ok_or_else(|| format!("{what}: histogram {name}.buckets must be an array"))?;
        let bucket_total: f64 = buckets
            .iter()
            .map(|b| {
                b.as_arr()
                    .and_then(|p| p.get(1))
                    .and_then(JsonValue::as_num)
            })
            .collect::<Option<Vec<f64>>>()
            .ok_or_else(|| format!("{what}: histogram {name} has malformed buckets"))?
            .iter()
            .sum();
        if bucket_total != count {
            return Err(format!(
                "{what}: histogram {name} bucket counts sum to {bucket_total}, count is {count}"
            ));
        }
    }
    let series = require(doc, "series", what)?
        .as_obj()
        .ok_or_else(|| format!("{what}: series must be an object"))?;
    for (name, entry) in series {
        let width =
            require_num(entry, "bucket_width", what).map_err(|e| format!("{e} (series {name})"))?;
        if width < 1.0 {
            return Err(format!("{what}: series {name} bucket_width must be ≥ 1"));
        }
        let means = require(entry, "means", what)?
            .as_arr()
            .ok_or_else(|| format!("{what}: series {name}.means must be an array"))?;
        if means.iter().any(|v| v.as_num().is_none()) {
            return Err(format!("{what}: series {name}.means must be numeric"));
        }
    }
    Ok(())
}

/// Counter names every serve metrics snapshot must carry. The server
/// pre-registers these at startup, so the snapshot is schema-complete even
/// before the first request; [`validate_serve_snapshot`] requires them.
pub const SERVE_REQUIRED_COUNTERS: &[&str] = &[
    "serve.requests_admitted",
    "serve.requests_shed",
    "serve.deadline_expired",
    "serve.responses_ok",
    "serve.protocol_errors",
    "serve.batches_formed",
    "serve.connections_accepted",
];

/// Gauge names every serve metrics snapshot must carry.
pub const SERVE_REQUIRED_GAUGES: &[&str] = &[
    "serve.queue_depth",
    "serve.queue_depth_max",
    "serve.queue_capacity",
    "serve.workers",
];

/// Histogram names every serve metrics snapshot must carry.
pub const SERVE_REQUIRED_HISTOGRAMS: &[&str] = &[
    "serve.batch_size",
    "serve.e2e_latency_us",
    "serve.queue_wait_us",
];

/// Whether a (valid) metrics snapshot came from the serving subsystem —
/// recognized by the presence of the serve counter family.
pub fn is_serve_snapshot(doc: &JsonValue) -> bool {
    doc.get("counters")
        .and_then(|c| c.get(SERVE_REQUIRED_COUNTERS[0]))
        .is_some()
}

/// Validates a serve metrics snapshot: the base schema of
/// [`validate_metrics_snapshot`] plus the serve metric family
/// ([`SERVE_REQUIRED_COUNTERS`], [`SERVE_REQUIRED_GAUGES`],
/// [`SERVE_REQUIRED_HISTOGRAMS`]).
///
/// # Errors
///
/// Returns a message naming the first violated constraint.
pub fn validate_serve_snapshot(doc: &JsonValue) -> Result<(), String> {
    validate_metrics_snapshot(doc)?;
    let what = "serve metrics snapshot";
    let family = [
        ("counters", SERVE_REQUIRED_COUNTERS),
        ("gauges", SERVE_REQUIRED_GAUGES),
        ("histograms", SERVE_REQUIRED_HISTOGRAMS),
    ];
    for (section, names) in family {
        let obj = require(doc, section, what)?;
        for name in names {
            if obj.get(name).is_none() {
                return Err(format!("{what}: missing {section} entry {name:?}"));
            }
        }
    }
    // Live-observability sections are optional (a bare registry snapshot
    // is still a valid serve snapshot) but validated when present — the
    // `stats` endpoint always includes both.
    if let Some(slo) = doc.get("slo") {
        validate_slo_view(slo).map_err(|e| format!("{what}: {e}"))?;
    }
    if let Some(flight) = doc.get("flight") {
        validate_flight_summary(flight).map_err(|e| format!("{what}: {e}"))?;
    }
    Ok(())
}

/// Validates a serve `stats` response: a serve snapshot that must also
/// carry the live `slo` view and `flight` summary.
///
/// # Errors
///
/// Returns a message naming the first violated constraint.
pub fn validate_stats_response(doc: &JsonValue) -> Result<(), String> {
    validate_serve_snapshot(doc)?;
    let what = "stats response";
    require(doc, "slo", what)?;
    require(doc, "flight", what)?;
    Ok(())
}

fn require_count(doc: &JsonValue, key: &str, what: &str) -> Result<f64, String> {
    let v = require_num(doc, key, what)?;
    if v < 0.0 || v.fract() != 0.0 {
        return Err(format!("{what}: {key} must be a non-negative integer"));
    }
    Ok(v)
}

/// Validates a windowed SLO view (the `slo` section of a `stats`
/// response, built by [`crate::SloView::to_json`]).
///
/// # Errors
///
/// Returns a message naming the first violated constraint.
pub fn validate_slo_view(doc: &JsonValue) -> Result<(), String> {
    let what = "slo view";
    let step = require_count(doc, "step", what)?;
    let window = require_count(doc, "window", what)?;
    require_count(doc, "now", what)?;
    if step < 1.0 || window < step || (window % step) != 0.0 {
        return Err(format!(
            "{what}: window ({window}) must be a positive multiple of step ({step})"
        ));
    }
    let depth = require_num(doc, "queue_depth", what)?;
    if depth < 0.0 {
        return Err(format!("{what}: queue_depth must be ≥ 0"));
    }
    let admitted = require_count(doc, "admitted", what)?;
    let shed = require_count(doc, "shed", what)?;
    let missed = require_count(doc, "deadline_missed", what)?;
    require_count(doc, "completed", what)?;
    for (key, num, den) in [
        ("shed_rate", shed, admitted + shed),
        ("deadline_miss_rate", missed, admitted),
    ] {
        let rate = require_num(doc, key, what)?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("{what}: {key} must be in [0, 1], got {rate}"));
        }
        let expect = if den == 0.0 { 0.0 } else { num / den };
        if (rate - expect).abs() > 1e-9 {
            return Err(format!("{what}: {key} is {rate}, counters imply {expect}"));
        }
    }
    let per_bin = require(doc, "per_bin", what)?
        .as_arr()
        .ok_or_else(|| format!("{what}: per_bin must be an array"))?;
    if per_bin.is_empty() {
        return Err(format!("{what}: per_bin must be non-empty"));
    }
    for (i, bin) in per_bin.iter().enumerate() {
        let idx = require_count(bin, "bin", what).map_err(|e| format!("{e} (per_bin[{i}])"))?;
        if idx != i as f64 {
            return Err(format!("{what}: per_bin[{i}] has bin index {idx}"));
        }
        let count = require_count(bin, "count", what).map_err(|e| format!("{e} (per_bin[{i}])"))?;
        for key in ["p50", "p90", "p99"] {
            match require(bin, key, what).map_err(|e| format!("{e} (per_bin[{i}])"))? {
                JsonValue::Null if count == 0.0 => {}
                JsonValue::Num(_) if count > 0.0 => {}
                other => {
                    return Err(format!(
                        "{what}: per_bin[{i}].{key} inconsistent with count {count}: {other}"
                    ))
                }
            }
        }
    }
    Ok(())
}

/// Event kinds a flight-recorder document may carry.
pub const FLIGHT_EVENT_KINDS: &[&str] = &[
    "admit",
    "shed",
    "deadline",
    "batch_start",
    "batch_done",
    "panic",
    "quota",
];

/// Validates a flight-recorder summary (the `flight` section of a `stats`
/// response): ring occupancy identities and per-kind counts.
///
/// # Errors
///
/// Returns a message naming the first violated constraint.
pub fn validate_flight_summary(doc: &JsonValue) -> Result<(), String> {
    let what = "flight summary";
    let cap = require_count(doc, "cap", what)?;
    if cap < 1.0 {
        return Err(format!("{what}: cap must be ≥ 1"));
    }
    let recorded = require_count(doc, "recorded", what)?;
    let retained = require_count(doc, "retained", what)?;
    if retained != recorded.min(cap) {
        return Err(format!(
            "{what}: retained ({retained}) must be min(recorded {recorded}, cap {cap})"
        ));
    }
    require_count(doc, "dumps", what)?;
    match require(doc, "last_dump_reason", what)? {
        JsonValue::Null | JsonValue::Str(_) => {}
        other => {
            return Err(format!(
                "{what}: last_dump_reason must be string or null, got {other}"
            ))
        }
    }
    let by_kind = require(doc, "by_kind", what)?
        .as_obj()
        .ok_or_else(|| format!("{what}: by_kind must be an object"))?;
    let mut total = 0.0;
    for (kind, count) in by_kind {
        if !FLIGHT_EVENT_KINDS.contains(&kind.as_str()) {
            return Err(format!("{what}: unknown event kind {kind:?}"));
        }
        let count = count
            .as_num()
            .ok_or_else(|| format!("{what}: by_kind.{kind} must be a number"))?;
        total += count;
    }
    if total != retained {
        return Err(format!(
            "{what}: by_kind sums to {total}, retained is {retained}"
        ));
    }
    Ok(())
}

/// Validates a flight-recorder dump (`"kind": "nvwa-flight"`): event
/// shape, strictly increasing sequence numbers, occupancy identities and
/// digest/event agreement.
///
/// # Errors
///
/// Returns a message naming the first violated constraint.
pub fn validate_flight_dump(doc: &JsonValue) -> Result<(), String> {
    let what = "flight dump";
    let kind = require(doc, "kind", what)?.as_str();
    if kind != Some("nvwa-flight") {
        return Err(format!(
            "{what}: kind must be \"nvwa-flight\", got {kind:?}"
        ));
    }
    let version = require_num(doc, "schema_version", what)?;
    if version != 1.0 {
        return Err(format!("{what}: unsupported schema_version {version}"));
    }
    let reason = require(doc, "reason", what)?
        .as_str()
        .ok_or_else(|| format!("{what}: reason must be a string"))?;
    if reason.is_empty() {
        return Err(format!("{what}: reason must be non-empty"));
    }
    let cap = require_count(doc, "cap", what)?;
    let recorded = require_count(doc, "recorded", what)?;
    let events = require(doc, "events", what)?
        .as_arr()
        .ok_or_else(|| format!("{what}: events must be an array"))?;
    // A slot's sequence number is claimed (bumping `recorded`) before its
    // payload write completes, so a dump frozen mid-run — e.g. at the
    // moment of a worker panic, while connections keep admitting — may
    // retain fewer events than `recorded` even below `cap`. It can never
    // retain more than either bound.
    if events.len() as f64 > recorded.min(cap) {
        return Err(format!(
            "{what}: {} events exceeds min(recorded {recorded}, cap {cap})",
            events.len()
        ));
    }
    let mut prev_seq = -1.0f64;
    let mut counts = vec![0.0f64; FLIGHT_EVENT_KINDS.len()];
    for (i, event) in events.iter().enumerate() {
        let seq = require_count(event, "seq", what).map_err(|e| format!("{e} (event {i})"))?;
        if seq <= prev_seq {
            return Err(format!(
                "{what}: event {i} seq {seq} not greater than previous {prev_seq}"
            ));
        }
        prev_seq = seq;
        let t = require_num(event, "t_us", what).map_err(|e| format!("{e} (event {i})"))?;
        if t < 0.0 {
            return Err(format!("{what}: event {i} has negative t_us"));
        }
        let kind = require(event, "kind", what)
            .map_err(|e| format!("{e} (event {i})"))?
            .as_str()
            .ok_or_else(|| format!("{what}: event {i} kind must be a string"))?;
        let slot = FLIGHT_EVENT_KINDS
            .iter()
            .position(|k| *k == kind)
            .ok_or_else(|| format!("{what}: event {i} has unknown kind {kind:?}"))?;
        counts[slot] += 1.0;
        for key in ["a", "b", "c"] {
            require_num(event, key, what).map_err(|e| format!("{e} (event {i})"))?;
        }
    }
    let digest = require(doc, "digest", what)?;
    for (slot, kind) in FLIGHT_EVENT_KINDS.iter().enumerate() {
        let n = require_count(digest, kind, what).map_err(|e| format!("{e} (digest)"))?;
        if n != counts[slot] {
            return Err(format!(
                "{what}: digest.{kind} is {n}, events contain {}",
                counts[slot]
            ));
        }
    }
    Ok(())
}

/// Validates a span-log document (`"kind": "nvwa-spanlog"`): every chain
/// parses, passes [`RequestSpans::check`] (contiguous, ordered, durations
/// summing to `e2e_ns`), and trace ids are strictly increasing (the log
/// sorts by trace id, so this also enforces uniqueness).
///
/// # Errors
///
/// Returns a message naming the first violated constraint.
pub fn validate_span_log(doc: &JsonValue) -> Result<(), String> {
    let what = "span log";
    let kind = require(doc, "kind", what)?.as_str();
    if kind != Some("nvwa-spanlog") {
        return Err(format!(
            "{what}: kind must be \"nvwa-spanlog\", got {kind:?}"
        ));
    }
    let version = require_num(doc, "schema_version", what)?;
    if version != 1.0 {
        return Err(format!("{what}: unsupported schema_version {version}"));
    }
    let cap = require_count(doc, "cap", what)?;
    require_count(doc, "dropped", what)?;
    let chains = require(doc, "chains", what)?
        .as_arr()
        .ok_or_else(|| format!("{what}: chains must be an array"))?;
    if chains.len() as f64 > cap {
        return Err(format!("{what}: {} chains exceed cap {cap}", chains.len()));
    }
    let mut prev_id: Option<u64> = None;
    for (i, chain) in chains.iter().enumerate() {
        let parsed =
            RequestSpans::from_json(chain).map_err(|e| format!("{what}: chains[{i}]: {e}"))?;
        parsed
            .check()
            .map_err(|e| format!("{what}: chains[{i}]: {e}"))?;
        if let Some(prev) = prev_id {
            if parsed.trace_id <= prev {
                return Err(format!(
                    "{what}: chains[{i}] trace_id {} not greater than previous {prev}",
                    parsed.trace_id
                ));
            }
        }
        prev_id = Some(parsed.trace_id);
    }
    Ok(())
}

/// Validates a loadgen report (`"kind": "nvwa-loadgen"`, schema version 1):
/// the accounting identities (`sent = received + lost`,
/// `received = ok + shed + quota + deadline + errors`; `quota` defaults
/// to 0 in reports predating multi-tenant serving) and the latency
/// summary, whose percentiles are null exactly when no latency was
/// sampled. When a `tenants` array is present, the same identities are
/// checked per tenant and the per-tenant counts must sum to the totals.
///
/// # Errors
///
/// Returns a message naming the first violated constraint.
pub fn validate_loadgen_report(doc: &JsonValue) -> Result<(), String> {
    let what = "loadgen report";
    let kind = require(doc, "kind", what)?.as_str();
    if kind != Some("nvwa-loadgen") {
        return Err(format!(
            "{what}: kind must be \"nvwa-loadgen\", got {kind:?}"
        ));
    }
    let version = require_num(doc, "schema_version", what)?;
    if version != 1.0 {
        return Err(format!("{what}: unsupported schema_version {version}"));
    }
    let mode = require(doc, "mode", what)?.as_str();
    if !matches!(mode, Some("closed") | Some("open")) {
        return Err(format!(
            "{what}: mode must be \"closed\" or \"open\", got {mode:?}"
        ));
    }
    let count_of = |key: &str| -> Result<f64, String> {
        let v = require_num(doc, key, what)?;
        if v < 0.0 || v.fract() != 0.0 {
            return Err(format!("{what}: {key} must be a non-negative integer"));
        }
        Ok(v)
    };
    let sent = count_of("sent")?;
    let received = count_of("received")?;
    let ok = count_of("ok")?;
    let shed = count_of("shed")?;
    // `quota` was added with multi-tenant serving; older reports omit it.
    let quota = if doc.get("quota").is_some() {
        count_of("quota")?
    } else {
        0.0
    };
    let deadline = count_of("deadline")?;
    let errors = count_of("errors")?;
    let lost = count_of("lost")?;
    count_of("duplicates")?;
    count_of("mapped")?;
    count_of("connections")?;
    if sent != received + lost {
        return Err(format!(
            "{what}: sent ({sent}) must equal received ({received}) + lost ({lost})"
        ));
    }
    if received != ok + shed + quota + deadline + errors {
        return Err(format!(
            "{what}: received ({received}) must equal ok+shed+quota+deadline+errors \
             ({ok}+{shed}+{quota}+{deadline}+{errors})"
        ));
    }
    if let Some(tenants) = doc.get("tenants") {
        let arr = tenants
            .as_arr()
            .ok_or_else(|| format!("{what}: tenants must be an array"))?;
        let mut sums = [0.0f64; 4]; // sent, received, lost, quota
        for (i, t) in arr.iter().enumerate() {
            let twhat = format!("loadgen report tenants[{i}]");
            let name = require(t, "name", &twhat)?;
            if !matches!(name.as_str(), Some(s) if !s.is_empty()) {
                return Err(format!("{twhat}: name must be a non-empty string"));
            }
            let tcount = |key: &str| -> Result<f64, String> {
                let v = require_num(t, key, &twhat)?;
                if v < 0.0 || v.fract() != 0.0 {
                    return Err(format!("{twhat}: {key} must be a non-negative integer"));
                }
                Ok(v)
            };
            let t_sent = tcount("sent")?;
            let t_received = tcount("received")?;
            let t_lost = tcount("lost")?;
            let t_ok = tcount("ok")?;
            let t_shed = tcount("shed")?;
            let t_quota = tcount("quota")?;
            let t_deadline = tcount("deadline")?;
            let t_errors = tcount("errors")?;
            tcount("mapped")?;
            if t_sent != t_received + t_lost {
                return Err(format!(
                    "{twhat}: sent ({t_sent}) must equal received ({t_received}) + lost ({t_lost})"
                ));
            }
            if t_received != t_ok + t_shed + t_quota + t_deadline + t_errors {
                return Err(format!(
                    "{twhat}: received ({t_received}) must equal \
                     ok+shed+quota+deadline+errors \
                     ({t_ok}+{t_shed}+{t_quota}+{t_deadline}+{t_errors})"
                ));
            }
            sums[0] += t_sent;
            sums[1] += t_received;
            sums[2] += t_lost;
            sums[3] += t_quota;
        }
        if !arr.is_empty() {
            for (sum, (key, total)) in sums.iter().zip([
                ("sent", sent),
                ("received", received),
                ("lost", lost),
                ("quota", quota),
            ]) {
                if *sum != total {
                    return Err(format!(
                        "{what}: per-tenant {key} sums to {sum} but the report total is {total}"
                    ));
                }
            }
        }
    }
    let wall_ms = require_num(doc, "wall_ms", what)?;
    if wall_ms.is_nan() || wall_ms <= 0.0 {
        return Err(format!("{what}: wall_ms must be > 0, got {wall_ms}"));
    }
    let rps = require_num(doc, "throughput_rps", what)?;
    if rps < 0.0 {
        return Err(format!("{what}: throughput_rps must be ≥ 0"));
    }
    let latency = require(doc, "latency_us", what)?;
    let count = require_num(latency, "count", what).map_err(|e| format!("{e} (latency_us)"))?;
    for key in ["mean", "p50", "p90", "p99", "min", "max"] {
        match require(latency, key, what).map_err(|e| format!("{e} (latency_us)"))? {
            JsonValue::Null if count == 0.0 => {}
            JsonValue::Num(_) if count > 0.0 => {}
            other => {
                return Err(format!(
                    "{what}: latency_us.{key} inconsistent with count {count}: {other}"
                ))
            }
        }
    }
    Ok(())
}

/// Validates a `BENCH_*.json` perf report (the `perf` binary's format).
///
/// # Errors
///
/// Returns a message naming the first violated constraint.
pub fn validate_bench_report(doc: &JsonValue) -> Result<(), String> {
    let what = "bench report";
    let parallelism = require_num(doc, "host_parallelism", what)?;
    if parallelism < 1.0 {
        return Err(format!("{what}: host_parallelism must be ≥ 1"));
    }
    let samples = require_num(doc, "samples_per_scenario", what)?;
    if samples < 1.0 {
        return Err(format!("{what}: samples_per_scenario must be ≥ 1"));
    }
    let scenarios = require(doc, "scenarios", what)?
        .as_arr()
        .ok_or_else(|| format!("{what}: scenarios must be an array"))?;
    if scenarios.is_empty() {
        return Err(format!("{what}: scenarios must be non-empty"));
    }
    for (i, s) in scenarios.iter().enumerate() {
        if require(s, "name", what)?.as_str().is_none() {
            return Err(format!("{what}: scenarios[{i}].name must be a string"));
        }
        let threads =
            require_num(s, "threads", what).map_err(|e| format!("{e} (scenarios[{i}])"))?;
        if threads < 1.0 {
            return Err(format!("{what}: scenarios[{i}].threads must be ≥ 1"));
        }
        let ms =
            require_num(s, "median_wall_ms", what).map_err(|e| format!("{e} (scenarios[{i}])"))?;
        if ms.is_nan() || ms <= 0.0 {
            return Err(format!("{what}: scenarios[{i}].median_wall_ms must be > 0"));
        }
    }
    require_numeric_object(doc, "speedups", what)?;
    // Optional PR8 section: the idle-fleet frontend comparison. Each
    // entry records one frontend's parked-fleet cost and active p99.
    if let Some(section) = doc.get("serve_reactor_10k_idle") {
        let entries = section
            .as_arr()
            .ok_or_else(|| format!("{what}: serve_reactor_10k_idle must be an array"))?;
        if entries.is_empty() {
            return Err(format!("{what}: serve_reactor_10k_idle must be non-empty"));
        }
        for (i, e) in entries.iter().enumerate() {
            if require(e, "frontend", what)?.as_str().is_none() {
                return Err(format!(
                    "{what}: serve_reactor_10k_idle[{i}].frontend must be a string"
                ));
            }
            for key in [
                "idle_conns",
                "threads_with_idle",
                "vm_rss_kb_with_idle",
                "active_p99_ms",
                "active_wall_ms",
            ] {
                let v = require_num(e, key, what)
                    .map_err(|err| format!("{err} (serve_reactor_10k_idle[{i}])"))?;
                if v < 0.0 || v.is_nan() {
                    return Err(format!(
                        "{what}: serve_reactor_10k_idle[{i}].{key} must be ≥ 0"
                    ));
                }
            }
        }
    }
    Ok(())
}

/// Validates a Chrome trace document: a `traceEvents` array whose entries
/// all carry `ph`/`pid`/`tid`/`name`, with `ts`/`dur` on spans.
///
/// # Errors
///
/// Returns a message naming the first violated constraint.
pub fn validate_chrome_trace(doc: &JsonValue) -> Result<(), String> {
    let what = "chrome trace";
    let events = require(doc, "traceEvents", what)?
        .as_arr()
        .ok_or_else(|| format!("{what}: traceEvents must be an array"))?;
    for (i, event) in events.iter().enumerate() {
        let ph = require(event, "ph", what)
            .map_err(|e| format!("{e} (event {i})"))?
            .as_str()
            .ok_or_else(|| format!("{what}: event {i} ph must be a string"))?;
        require_num(event, "pid", what).map_err(|e| format!("{e} (event {i})"))?;
        require_num(event, "tid", what).map_err(|e| format!("{e} (event {i})"))?;
        require(event, "name", what).map_err(|e| format!("{e} (event {i})"))?;
        match ph {
            "X" => {
                let ts = require_num(event, "ts", what).map_err(|e| format!("{e} (event {i})"))?;
                let dur =
                    require_num(event, "dur", what).map_err(|e| format!("{e} (event {i})"))?;
                if ts < 0.0 || dur < 0.0 {
                    return Err(format!("{what}: event {i} has negative ts/dur"));
                }
            }
            "i" => {
                require_num(event, "ts", what).map_err(|e| format!("{e} (event {i})"))?;
            }
            "M" => {}
            other => return Err(format!("{what}: event {i} has unknown phase {other:?}")),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    #[test]
    fn fresh_snapshot_validates() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("sim.total_cycles");
        reg.inc(c, 1000);
        let h = reg.histogram("eu.task_cycles");
        reg.observe(h, 64);
        let text = reg.snapshot_json(&SnapshotMeta {
            host_threads: 2,
            git_rev: None,
        });
        let doc = JsonValue::parse(&text).unwrap();
        validate_metrics_snapshot(&doc).unwrap();
    }

    #[test]
    fn snapshot_validation_catches_violations() {
        let mut reg = MetricsRegistry::new();
        let _ = reg.counter("x");
        let good = reg.snapshot(&SnapshotMeta {
            host_threads: 1,
            git_rev: None,
        });
        // Wrong kind.
        let mut bad = good.clone();
        if let JsonValue::Obj(pairs) = &mut bad {
            pairs[0].1 = JsonValue::Str("other".to_string());
        }
        assert!(validate_metrics_snapshot(&bad).is_err());
        // Missing host_threads.
        let mut bad = good.clone();
        if let JsonValue::Obj(pairs) = &mut bad {
            pairs.retain(|(k, _)| k != "host_threads");
        }
        assert!(validate_metrics_snapshot(&bad).is_err());
    }

    #[test]
    fn bench_report_shape_is_enforced() {
        let good = r#"{
            "host_parallelism": 1, "samples_per_scenario": 3,
            "scenarios": [{"name": "a", "threads": 1, "median_wall_ms": 10.5}],
            "speedups": {"x": 1.4}
        }"#;
        validate_bench_report(&JsonValue::parse(good).unwrap()).unwrap();
        let bad = r#"{"host_parallelism": 1, "samples_per_scenario": 3,
                      "scenarios": [], "speedups": {}}"#;
        assert!(validate_bench_report(&JsonValue::parse(bad).unwrap()).is_err());
    }

    #[test]
    fn trace_validation_checks_span_fields() {
        let good = r#"{"traceEvents": [
            {"ph": "X", "pid": 1, "tid": 0, "name": "read", "ts": 0, "dur": 2}
        ]}"#;
        validate_chrome_trace(&JsonValue::parse(good).unwrap()).unwrap();
        let bad = r#"{"traceEvents": [
            {"ph": "X", "pid": 1, "tid": 0, "name": "read", "ts": 0}
        ]}"#;
        assert!(validate_chrome_trace(&JsonValue::parse(bad).unwrap()).is_err());
    }

    #[test]
    fn serve_snapshot_requires_the_metric_family() {
        let mut reg = MetricsRegistry::new();
        for name in SERVE_REQUIRED_COUNTERS {
            reg.counter(name);
        }
        for name in SERVE_REQUIRED_GAUGES {
            reg.gauge(name);
        }
        for name in SERVE_REQUIRED_HISTOGRAMS {
            reg.histogram(name);
        }
        let meta = SnapshotMeta {
            host_threads: 1,
            git_rev: None,
        };
        let doc = reg.snapshot(&meta);
        assert!(is_serve_snapshot(&doc));
        validate_serve_snapshot(&doc).unwrap();

        // A snapshot missing one histogram fails the serve schema while
        // still passing the base schema.
        let mut partial = MetricsRegistry::new();
        for name in SERVE_REQUIRED_COUNTERS {
            partial.counter(name);
        }
        for name in SERVE_REQUIRED_GAUGES {
            partial.gauge(name);
        }
        let doc = partial.snapshot(&meta);
        validate_metrics_snapshot(&doc).unwrap();
        let err = validate_serve_snapshot(&doc).unwrap_err();
        assert!(err.contains("serve.batch_size"), "{err}");
    }

    #[test]
    fn loadgen_report_identities_are_enforced() {
        let good = r#"{
            "kind": "nvwa-loadgen", "schema_version": 1, "mode": "closed",
            "connections": 2, "reads": 100, "sent": 100, "received": 100,
            "ok": 95, "mapped": 90, "shed": 5, "deadline": 0, "errors": 0,
            "lost": 0, "duplicates": 0, "wall_ms": 12.5,
            "throughput_rps": 8000.0,
            "latency_us": {"count": 95, "mean": 900.0, "p50": 800.0,
                           "p90": 1500.0, "p99": 2100.0, "min": 300.0,
                           "max": 2500.0}
        }"#;
        validate_loadgen_report(&JsonValue::parse(good).unwrap()).unwrap();

        let lossy = good.replace("\"lost\": 0", "\"lost\": 3");
        let err = validate_loadgen_report(&JsonValue::parse(&lossy).unwrap()).unwrap_err();
        assert!(err.contains("lost"), "{err}");

        let bad_mode = good.replace("\"closed\"", "\"sideways\"");
        assert!(validate_loadgen_report(&JsonValue::parse(&bad_mode).unwrap()).is_err());

        // Zero-sample latency must use nulls.
        let empty = r#"{
            "kind": "nvwa-loadgen", "schema_version": 1, "mode": "open",
            "connections": 1, "reads": 0, "sent": 0, "received": 0,
            "ok": 0, "mapped": 0, "shed": 0, "deadline": 0, "errors": 0,
            "lost": 0, "duplicates": 0, "wall_ms": 1.0,
            "throughput_rps": 0,
            "latency_us": {"count": 0, "mean": null, "p50": null,
                           "p90": null, "p99": null, "min": null, "max": null}
        }"#;
        validate_loadgen_report(&JsonValue::parse(empty).unwrap()).unwrap();
    }

    #[test]
    fn loadgen_tenant_sections_are_enforced() {
        let good = r#"{
            "kind": "nvwa-loadgen", "schema_version": 1, "mode": "open",
            "connections": 2, "reads": 100, "sent": 100, "received": 100,
            "ok": 80, "mapped": 80, "shed": 0, "quota": 20, "deadline": 0,
            "errors": 0, "lost": 0, "duplicates": 0, "wall_ms": 12.5,
            "throughput_rps": 8000.0,
            "latency_us": {"count": 80, "mean": 900.0, "p50": 800.0,
                           "p90": 1500.0, "p99": 2100.0, "min": 300.0,
                           "max": 2500.0},
            "tenants": [
                {"name": "homo_sapiens", "sent": 60, "received": 60,
                 "lost": 0, "ok": 40, "shed": 0, "quota": 20,
                 "deadline": 0, "errors": 0, "mapped": 40,
                 "latency_us": {"count": 40, "mean": 1.0, "p50": 1.0,
                                "p90": 1.0, "p99": 1.0, "min": 1.0,
                                "max": 1.0}},
                {"name": "mus_musculus", "sent": 40, "received": 40,
                 "lost": 0, "ok": 40, "shed": 0, "quota": 0,
                 "deadline": 0, "errors": 0, "mapped": 40,
                 "latency_us": {"count": 40, "mean": 1.0, "p50": 1.0,
                                "p90": 1.0, "p99": 1.0, "min": 1.0,
                                "max": 1.0}}
            ]
        }"#;
        validate_loadgen_report(&JsonValue::parse(good).unwrap()).unwrap();

        // A tenant whose own identity is broken is named in the error.
        let broken = good.replace(
            "\"ok\": 40, \"shed\": 0, \"quota\": 20",
            "\"ok\": 41, \"shed\": 0, \"quota\": 20",
        );
        let err = validate_loadgen_report(&JsonValue::parse(&broken).unwrap()).unwrap_err();
        assert!(err.contains("tenants[0]"), "{err}");

        // Per-tenant counts must sum to the report totals (the tenant
        // itself stays internally consistent: sent 39 = received 39 =
        // ok 39, so only the cross-tenant sum breaks).
        let short = good
            .replace(
                "\"name\": \"mus_musculus\", \"sent\": 40, \"received\": 40",
                "\"name\": \"mus_musculus\", \"sent\": 39, \"received\": 39",
            )
            .replace(
                "\"lost\": 0, \"ok\": 40, \"shed\": 0, \"quota\": 0",
                "\"lost\": 0, \"ok\": 39, \"shed\": 0, \"quota\": 0",
            );
        let err = validate_loadgen_report(&JsonValue::parse(&short).unwrap()).unwrap_err();
        assert!(err.contains("sums to"), "{err}");

        // Quota without the top-level key: totals treat it as 0, so a
        // quota-bearing tenant cannot balance.
        let no_quota = good.replace(
            "\"shed\": 0, \"quota\": 20, \"deadline\": 0,\n            \"errors\": 0",
            "\"shed\": 0, \"deadline\": 0,\n            \"errors\": 0",
        );
        let parsed = JsonValue::parse(&no_quota).unwrap();
        assert!(validate_loadgen_report(&parsed).is_err());
    }

    #[test]
    fn slo_view_validation_checks_rates_and_bins() {
        let good = r#"{
            "now": 5000000, "window": 1000000, "step": 100000,
            "per_bin": [
                {"bin": 0, "count": 0, "p50": null, "p90": null, "p99": null},
                {"bin": 1, "count": 4, "p50": 800, "p90": 1500, "p99": 1500}
            ],
            "queue_depth": 3, "admitted": 8, "shed": 2,
            "deadline_missed": 1, "completed": 4,
            "shed_rate": 0.2, "deadline_miss_rate": 0.125
        }"#;
        validate_slo_view(&JsonValue::parse(good).unwrap()).unwrap();

        // A rate inconsistent with the window counters is rejected.
        let lying = good.replace("\"shed_rate\": 0.2", "\"shed_rate\": 0.5");
        let err = validate_slo_view(&JsonValue::parse(&lying).unwrap()).unwrap_err();
        assert!(err.contains("shed_rate"), "{err}");

        // Percentiles must be null exactly on an empty bin.
        let bad_bin = good.replace(
            "{\"bin\": 0, \"count\": 0, \"p50\": null",
            "{\"bin\": 0, \"count\": 0, \"p50\": 7",
        );
        assert!(validate_slo_view(&JsonValue::parse(&bad_bin).unwrap()).is_err());
    }

    #[test]
    fn flight_documents_are_validated() {
        let summary = r#"{
            "cap": 4, "recorded": 6, "retained": 4, "dumps": 1,
            "last_dump_reason": "worker_panic",
            "by_kind": {"admit": 2, "batch_start": 1, "panic": 1}
        }"#;
        validate_flight_summary(&JsonValue::parse(summary).unwrap()).unwrap();
        let bad = summary.replace("\"retained\": 4", "\"retained\": 5");
        assert!(validate_flight_summary(&JsonValue::parse(&bad).unwrap()).is_err());

        let dump = r#"{
            "kind": "nvwa-flight", "schema_version": 1,
            "reason": "worker_panic", "cap": 8, "recorded": 3,
            "events": [
                {"seq": 0, "t_us": 10, "kind": "admit", "a": 1, "b": 0, "c": 1},
                {"seq": 1, "t_us": 20, "kind": "batch_start", "a": 0, "b": 1, "c": 4},
                {"seq": 2, "t_us": 30, "kind": "panic", "a": 0, "b": 2, "c": 0}
            ],
            "digest": {"admit": 1, "shed": 0, "deadline": 0,
                       "batch_start": 1, "batch_done": 0, "panic": 1,
                       "quota": 0}
        }"#;
        validate_flight_dump(&JsonValue::parse(dump).unwrap()).unwrap();
        // A mid-run dump may retain fewer events than `recorded` (slots
        // claimed but not yet written at snapshot time) — never more.
        let midrun = dump.replace("\"recorded\": 3", "\"recorded\": 5");
        validate_flight_dump(&JsonValue::parse(&midrun).unwrap()).unwrap();
        let inflated = dump.replace("\"recorded\": 3", "\"recorded\": 2");
        let err = validate_flight_dump(&JsonValue::parse(&inflated).unwrap()).unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
        // Digest must agree with the event list.
        let lying = dump.replace("\"panic\": 1", "\"panic\": 2");
        let err = validate_flight_dump(&JsonValue::parse(&lying).unwrap()).unwrap_err();
        assert!(err.contains("digest"), "{err}");
        // Sequence numbers must be strictly increasing.
        let reordered = dump.replace("\"seq\": 2", "\"seq\": 1");
        assert!(validate_flight_dump(&JsonValue::parse(&reordered).unwrap()).is_err());
    }

    #[test]
    fn span_log_validation_rejects_broken_chains() {
        use crate::spans::{Outcome, RequestSpans, SpanLog, Stage};
        let mut log = SpanLog::new(8);
        for id in [2u64, 1, 3] {
            log.push(RequestSpans::chain(
                id,
                0,
                id,
                0,
                Outcome::Ok,
                100 * id,
                &[(Stage::Queue, 50), (Stage::Align, 200), (Stage::Write, 5)],
            ));
        }
        let doc = log.to_json();
        validate_span_log(&doc).unwrap();

        // Break contiguity inside one serialized chain.
        let broken = doc
            .to_string_compact()
            .replace("\"start_ns\":150", "\"start_ns\":151");
        assert!(validate_span_log(&JsonValue::parse(&broken).unwrap()).is_err());
    }

    #[test]
    fn git_revision_resolves_in_this_repo() {
        // The test harness runs inside the repository, so a revision is
        // available and looks like a hex object id.
        if let Some(rev) = git_revision() {
            assert!(rev.len() >= 7, "{rev}");
            assert!(rev.chars().all(|c| c.is_ascii_hexdigit()), "{rev}");
        }
    }
}
