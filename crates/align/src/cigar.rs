//! Alignment edit transcripts (CIGAR strings).

use std::fmt;

/// One CIGAR operation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CigarOp {
    /// Exact base match (`=`). Consumes query and target.
    Match,
    /// Substitution (`X`). Consumes query and target.
    Subst,
    /// Insertion relative to the target (`I`). Consumes query only.
    Ins,
    /// Deletion relative to the target (`D`). Consumes target only.
    Del,
}

impl CigarOp {
    /// The SAM character for this op.
    pub fn to_char(self) -> char {
        match self {
            CigarOp::Match => '=',
            CigarOp::Subst => 'X',
            CigarOp::Ins => 'I',
            CigarOp::Del => 'D',
        }
    }

    /// Whether the op consumes a query base.
    pub fn consumes_query(self) -> bool {
        matches!(self, CigarOp::Match | CigarOp::Subst | CigarOp::Ins)
    }

    /// Whether the op consumes a target base.
    pub fn consumes_target(self) -> bool {
        matches!(self, CigarOp::Match | CigarOp::Subst | CigarOp::Del)
    }
}

/// A run-length-encoded edit transcript.
///
/// # Examples
///
/// ```
/// use nvwa_align::{Cigar, CigarOp};
/// let mut c = Cigar::new();
/// c.push(CigarOp::Match, 10);
/// c.push(CigarOp::Match, 2); // merges with the previous run
/// c.push(CigarOp::Ins, 1);
/// assert_eq!(c.to_string(), "12=1I");
/// assert_eq!(c.query_len(), 13);
/// assert_eq!(c.target_len(), 12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cigar {
    runs: Vec<(CigarOp, u32)>,
}

impl Cigar {
    /// An empty transcript.
    pub fn new() -> Cigar {
        Cigar::default()
    }

    /// Appends `len` copies of `op`, merging with the last run when equal.
    pub fn push(&mut self, op: CigarOp, len: u32) {
        if len == 0 {
            return;
        }
        if let Some(last) = self.runs.last_mut() {
            if last.0 == op {
                last.1 += len;
                return;
            }
        }
        self.runs.push((op, len));
    }

    /// The run-length-encoded operations.
    pub fn runs(&self) -> &[(CigarOp, u32)] {
        &self.runs
    }

    /// Whether the transcript is empty.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Number of query bases consumed.
    pub fn query_len(&self) -> usize {
        self.runs
            .iter()
            .filter(|(op, _)| op.consumes_query())
            .map(|&(_, len)| len as usize)
            .sum()
    }

    /// Number of target bases consumed.
    pub fn target_len(&self) -> usize {
        self.runs
            .iter()
            .filter(|(op, _)| op.consumes_target())
            .map(|&(_, len)| len as usize)
            .sum()
    }

    /// Number of exactly matching bases.
    pub fn matches(&self) -> usize {
        self.runs
            .iter()
            .filter(|(op, _)| *op == CigarOp::Match)
            .map(|&(_, len)| len as usize)
            .sum()
    }

    /// Edit distance implied by the transcript (substitutions + indel bases).
    pub fn edit_distance(&self) -> usize {
        self.runs
            .iter()
            .filter(|(op, _)| *op != CigarOp::Match)
            .map(|&(_, len)| len as usize)
            .sum()
    }

    /// Appends all runs of `other`.
    pub fn concat(&mut self, other: &Cigar) {
        for &(op, len) in &other.runs {
            self.push(op, len);
        }
    }

    /// Reverses the transcript in place (for tail-to-head tracebacks).
    pub fn reverse(&mut self) {
        self.runs.reverse();
    }

    /// Recomputes the alignment score of this transcript under `scoring`.
    pub fn score(&self, scoring: &crate::scoring::Scoring) -> i32 {
        self.runs
            .iter()
            .map(|&(op, len)| match op {
                CigarOp::Match => scoring.match_score * len as i32,
                CigarOp::Subst => -scoring.mismatch_penalty * len as i32,
                CigarOp::Ins | CigarOp::Del => -scoring.gap_cost(len),
            })
            .sum()
    }
}

impl fmt::Display for Cigar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.runs.is_empty() {
            return write!(f, "*");
        }
        for &(op, len) in &self.runs {
            write!(f, "{}{}", len, op.to_char())?;
        }
        Ok(())
    }
}

impl FromIterator<(CigarOp, u32)> for Cigar {
    fn from_iter<I: IntoIterator<Item = (CigarOp, u32)>>(iter: I) -> Cigar {
        let mut c = Cigar::new();
        for (op, len) in iter {
            c.push(op, len);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scoring::Scoring;

    #[test]
    fn push_merges_adjacent_runs() {
        let mut c = Cigar::new();
        c.push(CigarOp::Match, 5);
        c.push(CigarOp::Match, 3);
        c.push(CigarOp::Del, 2);
        c.push(CigarOp::Match, 0); // no-op
        assert_eq!(c.runs().len(), 2);
        assert_eq!(c.to_string(), "8=2D");
    }

    #[test]
    fn lengths_and_edits() {
        let c: Cigar = [
            (CigarOp::Match, 10),
            (CigarOp::Subst, 1),
            (CigarOp::Ins, 2),
            (CigarOp::Del, 3),
        ]
        .into_iter()
        .collect();
        assert_eq!(c.query_len(), 13);
        assert_eq!(c.target_len(), 14);
        assert_eq!(c.matches(), 10);
        assert_eq!(c.edit_distance(), 6);
    }

    #[test]
    fn score_recomputation() {
        let s = Scoring::bwa_mem();
        let c: Cigar = [(CigarOp::Match, 20), (CigarOp::Subst, 1), (CigarOp::Del, 2)]
            .into_iter()
            .collect();
        assert_eq!(c.score(&s), 20 - 4 - (6 + 2));
    }

    #[test]
    fn empty_displays_star() {
        assert_eq!(Cigar::new().to_string(), "*");
    }

    #[test]
    fn concat_and_reverse() {
        let mut a: Cigar = [(CigarOp::Match, 4)].into_iter().collect();
        let b: Cigar = [(CigarOp::Match, 2), (CigarOp::Ins, 1)]
            .into_iter()
            .collect();
        a.concat(&b);
        assert_eq!(a.to_string(), "6=1I");
        a.reverse();
        assert_eq!(a.to_string(), "1I6=");
    }
}
