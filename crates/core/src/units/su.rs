//! The seeding unit (SU) timing model.
//!
//! SUs execute the bit-parallel FM-index search; their execution time is a
//! *dependent chain* of index-block accesses (each backward extension needs
//! the previous interval). An access is served by the shared SU table SRAM
//! when the block is hot, otherwise by HBM — which is what makes seeding
//! time input-sensitive and creates the termination diversity the Seeding
//! Scheduler exists to absorb (Challenge-①).

use nvwa_sim::hbm::Hbm;
use nvwa_sim::spm::Scratchpad;
use nvwa_sim::Cycle;

use super::workload::ReadWork;

/// The SU timing model (shared across the SU pool; per-unit state is just
/// busy/idle, tracked by the system).
#[derive(Debug)]
pub struct SuModel {
    cache: Scratchpad,
}

impl SuModel {
    /// Creates the model with a shared index cache of `cache_blocks`
    /// blocks and the given hit latency.
    pub fn new(cache_blocks: usize, cache_latency: Cycle) -> SuModel {
        SuModel {
            cache: Scratchpad::new(cache_blocks.max(1), cache_latency),
        }
    }

    /// Replays one read's seeding access chain starting at `start`,
    /// returning the completion cycle. Misses go to `hbm` (paying queueing
    /// delay under contention) and install the block in the cache.
    pub fn seeding_latency(&mut self, start: Cycle, work: &ReadWork, hbm: &mut Hbm) -> Cycle {
        let mut t = start;
        // Decode + per-base pipeline work even when every access hits.
        t += work.seeding_accesses.len() as Cycle / 4;
        for &addr in &work.seeding_accesses {
            match self.cache.access(addr) {
                Some(lat) => t += lat,
                None => {
                    t = hbm.request(t, addr);
                    self.cache.fill(addr);
                }
            }
        }
        t
    }

    /// Cache hit rate so far.
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvwa_sim::hbm::HbmConfig;

    fn work(accesses: Vec<u64>) -> ReadWork {
        ReadWork {
            read_id: 0,
            seeding_accesses: accesses,
            hits: Vec::new(),
        }
    }

    #[test]
    fn all_misses_pay_memory_latency() {
        let mut su = SuModel::new(4, 1);
        let mut hbm = Hbm::new(HbmConfig::default());
        // 10 distinct cold addresses on distinct channels: each is a
        // dependent 100-cycle round trip.
        let w = work((0..10u64).collect());
        let done = su.seeding_latency(0, &w, &mut hbm);
        assert!(done >= 1000, "done at {done}");
    }

    #[test]
    fn hot_blocks_hit_the_cache() {
        let mut su = SuModel::new(16, 2);
        let mut hbm = Hbm::new(HbmConfig::default());
        // Same address repeatedly: one miss then all hits.
        let w = work(vec![5; 100]);
        let done = su.seeding_latency(0, &w, &mut hbm);
        // 1 miss (100) + 99 hits (2 each) + pipeline 25.
        assert!(done < 400, "done at {done}");
        assert!(su.cache_hit_rate() > 0.9);
    }

    #[test]
    fn longer_chains_take_longer() {
        let mut su = SuModel::new(4, 1);
        let mut hbm = Hbm::new(HbmConfig::default());
        let short = su.seeding_latency(0, &work((0..20).collect()), &mut hbm);
        let mut su2 = SuModel::new(4, 1);
        let mut hbm2 = Hbm::new(HbmConfig::default());
        let long = su2.seeding_latency(0, &work((0..200).collect()), &mut hbm2);
        assert!(long > short * 5);
    }

    #[test]
    fn contention_slows_concurrent_chains() {
        // Two SU chains interleaved on one HBM: later chain sees queueing.
        let mut hbm = Hbm::new(HbmConfig {
            channels: 1,
            ..HbmConfig::default()
        });
        let mut su = SuModel::new(1, 1);
        let w = work((0..50u64).map(|i| i * 2 + 1).collect());
        let solo = {
            let mut hbm_solo = Hbm::new(HbmConfig {
                channels: 1,
                ..HbmConfig::default()
            });
            let mut su_solo = SuModel::new(1, 1);
            su_solo.seeding_latency(0, &w, &mut hbm_solo)
        };
        // Saturate the channel first.
        for i in 0..500u64 {
            let _ = hbm.request(0, i * 4 + 2);
        }
        let contended = su.seeding_latency(0, &w, &mut hbm);
        assert!(contended > solo);
    }
}
